"""Micro-batching prediction service: the serving data plane.

:class:`PredictionService` turns many concurrent ``predict`` requests
into few batched evaluations without changing a single output bit:

* **Micro-batching** — the batch loop takes the first queued request,
  then coalesces whatever else arrives within ``batch_window_s`` (up to
  ``max_batch``); a batch is grouped by model and executed off the
  event loop.  Each request inside a batch still runs the *exact*
  per-request ``predictor.predict_vector`` call a direct caller would
  run — batching amortizes model hydration and scheduling, never the
  math — so served predictions are bit-identical to library calls.
* **Response cache** — an LRU keyed by the request fingerprint
  (resolved model content key + exact probe bytes + sampling params,
  see :func:`~repro.serving.protocol.request_fingerprint`).  Because
  equal fingerprints imply equal answers, a cache hit can only ever
  replay the identical response.
* **Admission control** — at most ``queue_limit`` requests may be in
  flight; beyond that, new requests are rejected immediately with a
  429-style response instead of growing an unbounded queue.  The fixed
  count as the *primary* policy is **deprecated in favor of
  queueing-aware admission**: pass an ``admission`` gate (see
  :class:`repro.serving.fleet.admission.KingmanAdmission`) and the
  service sheds on predicted Kingman wait (utilization × variability)
  — the policy every fleet shard runs — while ``queue_limit`` stays on
  as a hard depth backstop, covering the gate's ``min_samples`` warmup
  window when it admits unconditionally (migration notes in
  ``docs/SERVING.md``).
* **Deadlines** — every request carries a deadline (client-supplied or
  ``default_deadline_s``); a request that cannot be answered in time
  resolves to a 504-style response and its slot is reclaimed.

Two execution planes are supported: ``"thread"`` (a dedicated worker
thread in this process — the default, zero extra processes) and
``"pool"`` (dispatch onto a persistent
:class:`~repro.parallel.worker_pool.WorkerPool`, where each worker
hydrates models from the shared artifact store).  Both planes run the
same per-request code path.

Metrics (``serving.*``) and the ``serving.batch`` span are documented
in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..errors import ArtifactError, ValidationError
from .protocol import (
    decode_campaign,
    decode_probe,
    encode_array,
    error,
    ok,
    probe_fingerprint,
)
from .registry import ModelRegistry

__all__ = ["ServingConfig", "PredictionService"]

_PLANES = ("thread", "pool")


@dataclass(frozen=True)
class ServingConfig:
    """Tunable serving policy (all knobs, no behavior).

    Attributes
    ----------
    max_batch:
        Largest number of requests coalesced into one batch.
    batch_window_s:
        How long the batch loop waits for followers after the first
        request of a batch arrives.
    queue_limit:
        Admission bound: maximum requests in flight before new arrivals
        are rejected with status 429.  Always enforced — with an
        ``admission`` gate installed it acts as the hard depth backstop
        behind the queueing-aware policy.
    cache_size:
        Response-cache capacity (entries); ``cache_enabled=False``
        bypasses the cache entirely.
    cache_enabled:
        Whether fingerprint-identical requests may be served from cache.
    default_deadline_s:
        Deadline applied when a request does not carry its own.
    plane:
        ``"thread"`` (in-process worker thread) or ``"pool"``
        (dispatch onto a :class:`~repro.parallel.worker_pool.WorkerPool`).
    n_workers:
        Worker count for the pool plane (ignored by the thread plane).
    """

    max_batch: int = 32
    batch_window_s: float = 0.002
    queue_limit: int = 128
    cache_size: int = 256
    cache_enabled: bool = True
    default_deadline_s: float = 5.0
    plane: str = "thread"
    n_workers: int = 1

    def __post_init__(self) -> None:
        """Validate ranges; raises :class:`~repro.errors.ValidationError`."""
        if self.max_batch < 1:
            raise ValidationError("max_batch must be >= 1")
        if self.batch_window_s < 0.0:
            raise ValidationError("batch_window_s must be >= 0")
        if self.queue_limit < 1:
            raise ValidationError("queue_limit must be >= 1")
        if self.cache_size < 1:
            raise ValidationError("cache_size must be >= 1")
        if self.default_deadline_s <= 0.0:
            raise ValidationError("default_deadline_s must be > 0")
        if self.plane not in _PLANES:
            raise ValidationError(f"plane must be one of {_PLANES}, got {self.plane!r}")
        if self.n_workers < 1:
            raise ValidationError("n_workers must be >= 1")


@dataclass
class _Request:
    """One queued predict request awaiting batch execution.

    ``probe`` is any :data:`~repro.core.sketch.Probe` — a
    :class:`~repro.core.sketch.SampleProbe` for v1/raw-campaign requests,
    a :class:`~repro.core.sketch.SketchProbe` for percentile-only ones.
    """

    fingerprint: str
    model_key: str
    probe: object
    n_samples: int
    sample_seed: int
    future: asyncio.Future = field(repr=False)


_SHUTDOWN = object()


class PredictionService:
    """Async facade over the registry + batch loop (one per event loop)."""

    def __init__(
        self,
        registry: ModelRegistry,
        config: ServingConfig | None = None,
        *,
        pool=None,
        admission=None,
    ) -> None:
        """Create a service over *registry*; ``await start()`` before use.

        A pre-built :class:`~repro.parallel.worker_pool.WorkerPool` may
        be passed for the pool plane; otherwise one is created lazily.
        An *admission* gate (duck-typed to
        :class:`~repro.serving.fleet.admission.KingmanAdmission`)
        supersedes the fixed ``queue_limit`` policy: its ``admit()``
        decides per arrival and ``observe(service_s)`` is fed measured
        per-request service times, with ``queue_limit`` retained as a
        hard depth backstop.
        """
        self.registry = registry
        self.config = config or ServingConfig()
        self.admission = admission
        self._pool = pool
        self._cache: OrderedDict[str, dict] = OrderedDict()
        self._queue: asyncio.Queue | None = None
        self._batch_task: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._pending = 0
        self._stats = {
            "requests": 0,
            "rejected": 0,
            "expired": 0,
            "errors": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "batches": 0,
            "batched_requests": 0,
            "drained": 0,
            "protocol_v1_requests": 0,
        }
        self._batch_sizes: dict[int, int] = {}

    async def start(self) -> None:
        """Bind to the running loop and start the batch task (idempotent)."""
        if self._batch_task is not None:
            return
        self._queue = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serving"
        )
        if self.config.plane == "pool" and self._pool is None:
            from ..parallel.worker_pool import WorkerPool

            self._pool = WorkerPool(self.config.n_workers)
        self._batch_task = asyncio.get_running_loop().create_task(self._batch_loop())

    async def close(self) -> None:
        """Drain and stop the batch loop; shut down execution resources.

        Every request enqueued before (or racing) the shutdown marker is
        answered: the batch loop executes what it can, and anything
        still queued afterwards resolves to a 503 response rather than a
        silently dropped future — the invariant graceful shard drain
        relies on.
        """
        if self._batch_task is None:
            return
        await self._queue.put(_SHUTDOWN)
        await self._batch_task
        self._batch_task = None
        while not self._queue.empty():
            leftover = self._queue.get_nowait()
            if leftover is _SHUTDOWN:
                continue
            if not leftover.future.done():
                self._stats["drained"] += 1
                leftover.future.set_result(
                    error(503, "service is shutting down; request not executed")
                )
        self._executor.shutdown(wait=True)
        self._executor = None

    def stats(self) -> dict:
        """Snapshot of request/cache/batch counters (plain ints)."""
        snapshot = dict(self._stats)
        snapshot["pending"] = self._pending
        snapshot["batch_size_histogram"] = {
            str(size): count for size, count in sorted(self._batch_sizes.items())
        }
        return snapshot

    async def submit(self, payload: dict) -> dict:
        """Answer one predict request (validate, cache, batch, respond).

        Always returns a response dict with a ``status`` field; protocol
        and capacity problems become 4xx/5xx responses, never exceptions.
        """
        if self._batch_task is None:
            await self.start()
        self._stats["requests"] += 1
        obs.counter("serving.requests")
        t0 = time.perf_counter()
        try:
            # _parse may read a ~100-byte tag JSON when the model is
            # addressed by tag rather than content key; an executor hop
            # would cost more latency than the read itself, and the
            # batcher right below this already amortizes real disk work.
            request, deadline_s = self._parse(payload)  # repro: noqa[ASYNC002]
        except ValidationError as exc:
            return error(400, str(exc))
        except ArtifactError as exc:
            return error(404, str(exc))

        if self.config.cache_enabled:
            hit = self._cache.get(request.fingerprint)
            if hit is not None:
                self._cache.move_to_end(request.fingerprint)
                self._stats["cache_hits"] += 1
                obs.counter("serving.cache.hits")
                obs.observe("serving.latency_s", time.perf_counter() - t0)
                response = dict(hit)
                response["cached"] = True
                return response
            self._stats["cache_misses"] += 1
            obs.counter("serving.cache.misses")

        # The depth cap always applies — with an admission gate it is
        # the hard backstop (per docs/SERVING.md), which matters during
        # the gate's min_samples warmup when it admits unconditionally.
        if self._pending >= self.config.queue_limit:
            self._stats["rejected"] += 1
            obs.counter("serving.rejected")
            return error(
                429,
                f"queue full ({self.config.queue_limit} requests in flight); "
                "retry later",
            )
        if self.admission is not None and not self.admission.admit():
            self._stats["rejected"] += 1
            obs.counter("serving.rejected")
            return error(
                429,
                "shed before the Kingman knee "
                f"({self.admission.describe()}); retry later",
            )

        self._pending += 1
        obs.gauge("serving.queue_depth", self._pending)
        await self._queue.put(request)
        try:
            response = await asyncio.wait_for(request.future, timeout=deadline_s)
        except asyncio.TimeoutError:
            self._stats["expired"] += 1
            obs.counter("serving.expired")
            return error(504, f"deadline of {deadline_s}s expired")
        finally:
            self._pending -= 1
            obs.gauge("serving.queue_depth", self._pending)

        if response.get("status") == 200 and self.config.cache_enabled:
            self._cache[request.fingerprint] = dict(response)
            self._cache.move_to_end(request.fingerprint)
            while len(self._cache) > self.config.cache_size:
                self._cache.popitem(last=False)
        obs.observe("serving.latency_s", time.perf_counter() - t0)
        return response

    def _parse(self, payload: dict) -> tuple[_Request, float]:
        """Validate a raw predict payload into a :class:`_Request`.

        Accepts both wire generations: a v2 body carries ``probe`` (with
        its ``probe_kind`` discriminator); a v1 body carries a bare
        ``campaign``, which is wrapped into a sample probe and counted on
        the ``serving.protocol_v1_requests`` counter (same fingerprint,
        same answer — only the envelope differs).
        """
        if not isinstance(payload, dict):
            raise ValidationError("request must be a JSON object")
        model_name = payload.get("model")
        if not isinstance(model_name, str) or not model_name:
            raise ValidationError("request needs a 'model' tag or content key")
        model_key = self.registry.resolve(model_name)
        if "probe" in payload:
            probe = decode_probe(payload.get("probe"))
        else:
            from ..core.sketch import SampleProbe

            self._stats["protocol_v1_requests"] += 1
            obs.counter("serving.protocol_v1_requests")
            probe = SampleProbe(decode_campaign(payload.get("campaign")))
        n_samples = payload.get("n_samples", 0)
        sample_seed = payload.get("sample_seed", 0)
        if not isinstance(n_samples, int) or n_samples < 0:
            raise ValidationError("n_samples must be a non-negative integer")
        if not isinstance(sample_seed, int):
            raise ValidationError("sample_seed must be an integer")
        deadline_s = payload.get("deadline_s", self.config.default_deadline_s)
        if not isinstance(deadline_s, (int, float)) or deadline_s <= 0:
            raise ValidationError("deadline_s must be a positive number")
        fingerprint = probe_fingerprint(
            model_key, probe, n_samples=n_samples, sample_seed=sample_seed
        )
        future = asyncio.get_running_loop().create_future()
        return (
            _Request(fingerprint, model_key, probe, n_samples, sample_seed, future),
            float(deadline_s),
        )

    async def _batch_loop(self) -> None:
        """Coalesce queued requests into batches and execute them."""
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is _SHUTDOWN:
                return
            batch = [first]
            horizon = loop.time() + self.config.batch_window_s
            stop = False
            while len(batch) < self.config.max_batch:
                remaining = horizon - loop.time()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if item is _SHUTDOWN:
                    stop = True
                    break
                batch.append(item)
            await self._execute(batch)
            if stop:
                return

    async def _execute(self, batch: list) -> None:
        """Run one batch: group by model, evaluate off-loop, deliver."""
        self._stats["batches"] += 1
        self._stats["batched_requests"] += len(batch)
        self._batch_sizes[len(batch)] = self._batch_sizes.get(len(batch), 0) + 1
        obs.counter("serving.batches")
        obs.counter("serving.batched_requests", len(batch))
        obs.observe("serving.batch_size", len(batch))
        groups: OrderedDict[str, list] = OrderedDict()
        for request in batch:
            groups.setdefault(request.model_key, []).append(request)
        loop = asyncio.get_running_loop()
        for model_key, requests in groups.items():
            t0 = loop.time()
            with obs.span(
                "serving.batch",
                model=model_key,
                n_requests=len(requests),
                plane=self.config.plane,
            ):
                try:
                    responses = await loop.run_in_executor(
                        self._executor, self._compute_group, model_key, requests
                    )
                except Exception as exc:  # noqa: BLE001 — batch loop must survive
                    self._stats["errors"] += 1
                    obs.counter("serving.errors")
                    kind = type(exc).__name__
                    responses = [error(500, f"{kind}: {exc}")] * len(requests)
            if self.admission is not None:
                # Per-request service effort: the group's executor wall
                # time amortized across its requests (batching shares
                # hydration/scheduling, so the amortized cost is the
                # honest per-request figure for the queueing model).
                per_request_s = (loop.time() - t0) / len(requests)
                for _ in requests:
                    self.admission.observe(per_request_s)
            for request, response in zip(requests, responses):
                if not request.future.done():
                    request.future.set_result(response)

    def _compute_group(self, model_key: str, requests: list) -> list[dict]:
        """Evaluate one model's requests (runs in the executor thread).

        Per-request ``predict_vector`` calls, never a stacked matrix —
        identical math to the direct library path, so served outputs are
        bit-identical regardless of how requests were batched.
        """
        predictor = self.registry.load(model_key)
        if self.config.plane == "pool":
            encoded = self._pool.map(
                _pool_predict_task,
                [
                    (str(self.registry.root), model_key, _encode_for_pool(r.probe))
                    for r in requests
                ],
            )
            vectors = [_decode_pool_vector(text) for text in encoded]
        else:
            vectors = [predictor.predict_vector(r.probe) for r in requests]
        responses = []
        for request, vector in zip(requests, vectors):
            body = ok(
                model_key=model_key,
                representation=type(predictor.representation).__name__,
                vector=[float(v) for v in vector],
                cached=False,
            )
            if request.n_samples > 0:
                rng = np.random.default_rng(int(request.sample_seed))
                draws = predictor.representation.reconstruct(
                    np.asarray(vector, dtype=np.float64)
                ).sample(request.n_samples, rng=rng)
                body["samples"] = encode_array(draws)
            responses.append(body)
        return responses


def _encode_for_pool(probe) -> dict:
    """Probe wire form for pool dispatch (module-level for clarity)."""
    from .protocol import encode_probe

    return encode_probe(probe)


def _decode_pool_vector(text: str) -> np.ndarray:
    """Decode a base64 vector returned by the pool task."""
    from .protocol import decode_array

    return decode_array(text)


def _pool_predict_task(item):
    """Module-level alias so pool dispatch stays picklable (CONC001)."""
    from ._workers import predict_task

    return predict_task(item)
