"""Worker-side entry points for the pool execution plane.

The serving batch loop can dispatch prediction work onto the repo's
persistent :class:`~repro.parallel.worker_pool.WorkerPool`.  Pool
dispatch requires a module-level callable (anything nested silently
degrades to serial — CONC001), so the task function lives here, and
each worker process keeps its own small cache of hydrated models keyed
by ``(store root, content key)`` so a batch of requests against the
same model loads it at most once per worker lifetime.

Determinism: workers run the exact same per-request
``predictor.predict_vector`` call the in-process plane runs, so plane
choice cannot change a single output bit.
"""

from __future__ import annotations

from collections import OrderedDict

from .protocol import decode_campaign, decode_probe, encode_array

__all__ = ["predict_task"]

#: Per-process hydrated-model cache; sized for a handful of hot models.
_MODEL_CACHE: OrderedDict[tuple[str, str], object] = OrderedDict()
_MODEL_CACHE_SIZE = 4


def _load_model(root: str, key: str) -> object:
    """Hydrate (or reuse) the model with *key* from the store at *root*."""
    from .registry import ModelRegistry

    cache_key = (root, key)
    cached = _MODEL_CACHE.get(cache_key)
    if cached is not None:
        _MODEL_CACHE.move_to_end(cache_key)
        return cached
    model = ModelRegistry(root).load(key)
    _MODEL_CACHE[cache_key] = model
    _MODEL_CACHE.move_to_end(cache_key)
    while len(_MODEL_CACHE) > _MODEL_CACHE_SIZE:
        _MODEL_CACHE.popitem(last=False)
    return model


def predict_task(item: tuple[str, str, dict]) -> str:
    """Pool task: ``(store_root, model_key, probe_payload) -> vector``.

    The payload is an encoded probe (``probe_kind`` discriminator) or —
    for compatibility with pre-v2 dispatchers — a bare encoded campaign.
    Returns the predicted representation vector base64-encoded (exact
    float64 bytes), keeping the IPC payload JSON-safe and bit-faithful.
    """
    root, key, payload = item
    predictor = _load_model(root, key)
    if isinstance(payload, dict) and "probe_kind" in payload:
        probe = decode_probe(payload)
    else:
        probe = decode_campaign(payload)
    vector = predictor.predict_vector(probe)
    return encode_array(vector)
