"""repro — reproduction of *Predicting Performance Variability* (IPDPS 2025).

Predict the full run-to-run performance **distribution** of an application
— modes, tails, spread — instead of a scalar summary, either from a few
runs on the same system (use case 1) or from a measured distribution on a
different system (use case 2).

Quickstart
----------
>>> from repro import FewRunsPredictor, measure_all
>>> campaigns = measure_all("intel", n_runs=300)              # doctest: +SKIP
>>> probe = campaigns.pop("spec_omp/376")                     # doctest: +SKIP
>>> predictor = FewRunsPredictor().fit(campaigns)             # doctest: +SKIP
>>> dist = predictor.predict_distribution(probe.subset(range(10)))  # doctest: +SKIP
>>> dist.sample(1000)                                         # doctest: +SKIP

Package map
-----------
* :mod:`repro.core` — prediction pipelines (the paper's contribution);
* :mod:`repro.stats` — moments, KDE, KS, Pearson system, MaxEnt;
* :mod:`repro.ml` — kNN / random forest / gradient boosting, CV splitters;
* :mod:`repro.simbench` — the simulated benchmarks + systems substrate;
* :mod:`repro.data` — campaign containers, metric catalogs, mini-table;
* :mod:`repro.experiments` — per-figure/table reproduction runners;
* :mod:`repro.viz` — terminal density plots and series export;
* :mod:`repro.parallel` — deterministic seeding + process-pool map;
* :mod:`repro.obs` — metrics/tracing (contract in docs/OBSERVABILITY.md).
"""

from . import registry
from .core import (
    CrossSystemPredictor,
    EvalConfig,
    FewRunsPredictor,
    HistogramRepresentation,
    PearsonRndRepresentation,
    PredictConfig,
    PyMaxEntRepresentation,
    QuantileSketch,
    SampleProbe,
    SketchProbe,
    as_probe,
    evaluate_cross_system,
    evaluate_few_runs,
    get_model,
    get_representation,
    summarize_ks,
)
from .simbench import benchmark_names, measure_all, run_campaign

__version__ = "2.0.0"

#: The stable v2 surface.  ``get_model``/``get_representation`` remain
#: importable as deprecated shims over :mod:`repro.registry`; the online
#: serving subsystem lives in :mod:`repro.serving` (imported on demand —
#: ``import repro.serving``).  Deprecation policy: see README.md.
__all__ = [
    "CrossSystemPredictor",
    "EvalConfig",
    "FewRunsPredictor",
    "HistogramRepresentation",
    "PearsonRndRepresentation",
    "PredictConfig",
    "PyMaxEntRepresentation",
    "QuantileSketch",
    "SampleProbe",
    "SketchProbe",
    "as_probe",
    "registry",
    "evaluate_cross_system",
    "evaluate_few_runs",
    "get_model",
    "get_representation",
    "summarize_ks",
    "benchmark_names",
    "measure_all",
    "run_campaign",
    "__version__",
]
