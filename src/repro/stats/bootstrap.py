"""Bootstrap resampling and the adaptive stopping rule.

Two supporting techniques from the paper's context:

* nonparametric bootstrap confidence intervals for distribution statistics
  (used when deciding how trustworthy a measured distribution is);
* the **adaptive stopping rule** of Mittal et al. (paper reference [7]):
  keep adding runs until a bootstrap-estimated confidence interval of the
  statistic of interest is narrower than a target precision — the
  "compromise between too many samples and too few" the introduction
  motivates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from .._validation import as_sample_array, check_positive_int, check_probability, check_random_state
from ..errors import ValidationError

__all__ = [
    "bootstrap_ci",
    "bootstrap_statistic",
    "AdaptiveStoppingRule",
    "StoppingDecision",
]


def bootstrap_statistic(
    samples,
    statistic: Callable[[np.ndarray], float],
    *,
    n_resamples: int = 1000,
    rng=None,
) -> np.ndarray:
    """Bootstrap replicates of *statistic* over *samples*.

    The statistic callable receives a 2-D array ``(n_resamples, n)`` when
    it is vectorizable (detected by trying once), otherwise it is applied
    row-by-row.  Returns the 1-D array of replicate values.
    """
    x = as_sample_array(samples, min_size=2)
    n_resamples = check_positive_int(n_resamples, name="n_resamples")
    gen = check_random_state(rng)
    idx = gen.integers(0, x.size, size=(n_resamples, x.size))
    resamples = x[idx]
    try:
        values = np.asarray(statistic(resamples), dtype=np.float64)
        if values.shape == (n_resamples,):
            return values
    except Exception:
        pass
    return np.array([float(statistic(row)) for row in resamples])


def bootstrap_ci(
    samples,
    statistic: Callable[[np.ndarray], float],
    *,
    confidence: float = 0.95,
    n_resamples: int = 1000,
    rng=None,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for *statistic*."""
    confidence = check_probability(confidence, name="confidence", inclusive=False)
    values = bootstrap_statistic(samples, statistic, n_resamples=n_resamples, rng=rng)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(values, [alpha, 1.0 - alpha])
    return float(lo), float(hi)


@dataclass(frozen=True)
class StoppingDecision:
    """Outcome of one adaptive-stopping check."""

    n_samples: int
    ci_low: float
    ci_high: float
    relative_width: float
    should_stop: bool


class AdaptiveStoppingRule:
    """Adaptive stopping rule for performance measurements (paper ref [7]).

    Measure in batches; after each batch, bootstrap a confidence interval
    for the statistic of interest (median by default) and stop once its
    width relative to the point estimate drops below ``target_precision``.

    Example
    -------
    >>> rule = AdaptiveStoppingRule(target_precision=0.02, rng=0)
    >>> samples = []
    >>> for batch in runner:              # doctest: +SKIP
    ...     samples.extend(batch)
    ...     if rule.check(samples).should_stop:
    ...         break
    """

    def __init__(
        self,
        *,
        statistic: Callable[[np.ndarray], float] | None = None,
        target_precision: float = 0.02,
        confidence: float = 0.95,
        min_samples: int = 10,
        max_samples: int = 10000,
        n_resamples: int = 500,
        rng=None,
    ) -> None:
        if target_precision <= 0.0:
            raise ValidationError("target_precision must be positive")
        self.statistic = statistic or (lambda rows: np.median(rows, axis=-1))
        self.target_precision = float(target_precision)
        self.confidence = check_probability(confidence, name="confidence", inclusive=False)
        self.min_samples = check_positive_int(min_samples, name="min_samples")
        self.max_samples = check_positive_int(max_samples, name="max_samples")
        if self.max_samples < self.min_samples:
            raise ValidationError("max_samples must be >= min_samples")
        self.n_resamples = check_positive_int(n_resamples, name="n_resamples")
        self._rng = check_random_state(rng)

    def check(self, samples) -> StoppingDecision:
        """Evaluate the rule on the samples collected so far."""
        x = as_sample_array(samples, min_size=1)
        if x.size < self.min_samples:
            return StoppingDecision(x.size, np.nan, np.nan, np.inf, False)
        lo, hi = bootstrap_ci(
            x,
            self.statistic,
            confidence=self.confidence,
            n_resamples=self.n_resamples,
            rng=self._rng,
        )
        center = float(self.statistic(x[None, :])[0]) if _vectorized(self.statistic, x) else float(self.statistic(x))
        # Exact-zero guard (not a tolerance check): any nonzero center,
        # however small, is a valid relative-precision denominator.
        denom = abs(center) if center != 0.0 else 1.0  # repro: noqa[DET005]
        rel = (hi - lo) / denom
        stop = rel <= self.target_precision or x.size >= self.max_samples
        return StoppingDecision(x.size, lo, hi, float(rel), stop)

    def run(
        self,
        sample_source: Callable[[int], np.ndarray],
        *,
        batch_size: int = 10,
    ) -> tuple[np.ndarray, StoppingDecision]:
        """Drive a measurement loop until the rule fires.

        ``sample_source(k)`` must return *k* fresh measurements.  Returns
        the collected samples and the final decision.
        """
        batch_size = check_positive_int(batch_size, name="batch_size")
        collected = np.empty(0, dtype=np.float64)
        decision = StoppingDecision(0, np.nan, np.nan, np.inf, False)
        while collected.size < self.max_samples:
            take = min(batch_size, self.max_samples - collected.size)
            fresh = as_sample_array(sample_source(take), name="sample batch")
            collected = np.concatenate([collected, fresh])
            decision = self.check(collected)
            if decision.should_stop:
                break
        return collected, decision


def _vectorized(statistic: Callable, x: np.ndarray) -> bool:
    """Whether *statistic* accepts a 2-D batch (best-effort probe)."""
    try:
        out = statistic(x[None, :])
        return np.asarray(out).shape == (1,)
    except Exception:
        return False
