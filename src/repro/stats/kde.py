"""Gaussian kernel density estimation.

The paper visualizes every performance distribution as a KDE curve
(Section IV-E).  This is a from-scratch, fully vectorized Gaussian KDE with
the two classic bandwidth rules (Scott, Silverman) plus a robust variant
that uses the IQR-based spread so daemon-interference outliers do not wash
out the curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_sample_array, check_random_state
from ..errors import ValidationError

__all__ = ["GaussianKDE", "scott_bandwidth", "silverman_bandwidth"]

_SQRT_2PI = np.sqrt(2.0 * np.pi)


def _spread(x: np.ndarray) -> float:
    """Robust spread estimate: min(std, IQR/1.349), floored for degenerate data."""
    std = float(x.std())
    q75, q25 = np.percentile(x, [75.0, 25.0])
    iqr = float(q75 - q25)
    candidates = [s for s in (std, iqr / 1.349) if s > 0.0]
    if not candidates:
        # Degenerate (constant) sample: tiny bandwidth relative to location
        # so the KDE renders as a spike instead of dividing by zero.
        scale = max(abs(float(x[0])), 1.0)
        return 1e-6 * scale
    return min(candidates)


def scott_bandwidth(samples) -> float:
    """Scott's rule: ``sigma * n**(-1/5)``."""
    x = as_sample_array(samples, min_size=1)
    return _spread(x) * x.size ** (-1.0 / 5.0)


def silverman_bandwidth(samples) -> float:
    """Silverman's rule of thumb: ``0.9 * sigma * n**(-1/5)``."""
    x = as_sample_array(samples, min_size=1)
    return 0.9 * _spread(x) * x.size ** (-1.0 / 5.0)


@dataclass(frozen=True)
class GaussianKDE:
    """Gaussian kernel density estimate of a 1-D sample.

    Parameters
    ----------
    samples:
        Underlying data points.
    bandwidth:
        Kernel standard deviation (must be positive).
    """

    samples: np.ndarray
    bandwidth: float

    @classmethod
    def fit(cls, samples, bandwidth: float | str = "silverman") -> "GaussianKDE":
        """Fit a KDE, choosing bandwidth by rule name or explicit value."""
        x = as_sample_array(samples, min_size=1)
        if isinstance(bandwidth, str):
            rule = {"scott": scott_bandwidth, "silverman": silverman_bandwidth}.get(
                bandwidth
            )
            if rule is None:
                raise ValidationError(
                    f"unknown bandwidth rule {bandwidth!r}; use 'scott' or 'silverman'"
                )
            bw = rule(x)
        else:
            bw = float(bandwidth)
        if bw <= 0.0:
            raise ValidationError(f"bandwidth must be positive, got {bw}")
        return cls(np.sort(x), bw)

    @property
    def n(self) -> int:
        """Number of data points."""
        return int(self.samples.size)

    def pdf(self, x) -> np.ndarray:
        """Evaluate the density at query points *x* (vectorized, chunked).

        Chunking bounds peak memory at ~8 MB for huge query grids while
        keeping the inner computation a single broadcast kernel evaluation
        (views, no Python-level loops over data points).
        """
        xq = np.atleast_1d(np.asarray(x, dtype=np.float64))
        out = np.empty(xq.shape, dtype=np.float64)
        chunk = max(1, int(1_000_000 // max(self.n, 1)))
        inv_bw = 1.0 / self.bandwidth
        norm = 1.0 / (self.n * self.bandwidth * _SQRT_2PI)
        for start in range(0, xq.size, chunk):
            sl = slice(start, start + chunk)
            z = (xq[sl, None] - self.samples[None, :]) * inv_bw
            out[sl] = norm * np.exp(-0.5 * z * z).sum(axis=1)
        return out

    def cdf(self, x) -> np.ndarray:
        """Evaluate the KDE's CDF (mixture of Gaussian CDFs)."""
        from scipy.special import ndtr

        xq = np.atleast_1d(np.asarray(x, dtype=np.float64))
        out = np.empty(xq.shape, dtype=np.float64)
        chunk = max(1, int(1_000_000 // max(self.n, 1)))
        inv_bw = 1.0 / self.bandwidth
        for start in range(0, xq.size, chunk):
            sl = slice(start, start + chunk)
            z = (xq[sl, None] - self.samples[None, :]) * inv_bw
            out[sl] = ndtr(z).mean(axis=1)
        return out

    def grid(self, n_points: int = 256, pad: float = 3.0) -> np.ndarray:
        """Evaluation grid covering the data ± ``pad`` bandwidths."""
        lo = float(self.samples[0]) - pad * self.bandwidth
        hi = float(self.samples[-1]) + pad * self.bandwidth
        return np.linspace(lo, hi, n_points)

    def evaluate_on_grid(self, n_points: int = 256) -> tuple[np.ndarray, np.ndarray]:
        """(grid, density) convenience pair for plotting/export."""
        g = self.grid(n_points)
        return g, self.pdf(g)

    def sample(self, n: int, rng=None) -> np.ndarray:
        """Draw *n* points from the KDE (data resample + Gaussian noise)."""
        gen = check_random_state(rng)
        if n <= 0:
            raise ValidationError(f"n must be positive, got {n}")
        picks = gen.choice(self.samples, size=n, replace=True)
        return picks + gen.normal(0.0, self.bandwidth, size=n)
