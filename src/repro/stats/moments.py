"""Moment computation and feasibility checks.

The paper represents distributions by their first four moments — mean,
standard deviation, skewness, and kurtosis — both as prediction targets
(PyMaxEnt / PearsonRnd representations, Section III-B2) and as input-feature
summaries across a few runs (Section III-B1).  This module provides the
single source of truth for how those moments are computed.

Conventions match MATLAB ``pearsrnd`` and ``scipy.stats``:

* ``skewness`` is the standardized third central moment
  (``m3 / m2**1.5``), the *biased* estimator by default (Fisher-Pearson).
* ``kurtosis`` is the standardized fourth central moment (``m4 / m2**2``),
  i.e. **not** excess kurtosis: a normal distribution has kurtosis 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .._validation import as_sample_array
from ..errors import MomentError

__all__ = [
    "MomentVector",
    "central_moments",
    "standardized_moments",
    "moment_vector",
    "moment_matrix",
    "is_feasible",
    "check_feasible",
    "nearest_feasible",
    "KURTOSIS_MARGIN",
]

#: Minimum gap enforced between kurtosis and its theoretical lower bound
#: ``skew**2 + 1``; used when projecting noisy sample moments back into the
#: feasible region.
KURTOSIS_MARGIN = 1e-6


@dataclass(frozen=True)
class MomentVector:
    """First four moments of a distribution.

    Attributes
    ----------
    mean:
        Arithmetic mean.
    std:
        Standard deviation (population convention, ``ddof=0``).
    skew:
        Standardized third central moment.
    kurt:
        Standardized fourth central moment (normal = 3, *not* excess).
    """

    mean: float
    std: float
    skew: float
    kurt: float

    def as_array(self) -> np.ndarray:
        """Return ``[mean, std, skew, kurt]`` as a float64 array."""
        return np.array([self.mean, self.std, self.skew, self.kurt], dtype=np.float64)

    @classmethod
    def from_array(cls, arr) -> "MomentVector":
        """Build from a length-4 array ``[mean, std, skew, kurt]``."""
        a = np.asarray(arr, dtype=np.float64).reshape(-1)
        if a.size != 4:
            raise MomentError(f"moment vector must have 4 entries, got {a.size}")
        return cls(float(a[0]), float(a[1]), float(a[2]), float(a[3]))

    @classmethod
    def from_samples(cls, samples) -> "MomentVector":
        """Estimate the four moments from a sample array."""
        return moment_vector(samples)

    def is_feasible(self) -> bool:
        """Whether a distribution with these moments can exist."""
        return is_feasible(self.skew, self.kurt) and self.std >= 0.0

    def feasible(self) -> "MomentVector":
        """Return the nearest feasible moment vector (projection)."""
        mean, std, skew, kurt = nearest_feasible(self.mean, self.std, self.skew, self.kurt)
        return MomentVector(mean, std, skew, kurt)


def central_moments(samples, order: int = 4) -> np.ndarray:
    """Central moments ``m_0..m_order`` of a sample (``m_0 = 1``, ``m_1 = 0``).

    Vectorized single pass over a broadcast power table; ``samples`` must be
    1-D with at least one element.
    """
    x = as_sample_array(samples, min_size=1)
    if order < 0:
        raise MomentError(f"order must be non-negative, got {order}")
    centered = x - x.mean()
    # powers: shape (order+1, n); small order so the table is cheap and the
    # reduction stays in one vectorized call.
    powers = centered[None, :] ** np.arange(order + 1)[:, None]
    return powers.mean(axis=1)


def standardized_moments(samples, order: int = 4) -> np.ndarray:
    """Standardized moments: ``m_k / m_2**(k/2)`` for ``k = 0..order``.

    For a degenerate (zero-variance) sample the higher standardized moments
    are defined as 0 (skew) and 3 (kurt) by convention so that constant
    runtimes behave like a point mass with Gaussian-compatible shape
    parameters downstream.
    """
    m = central_moments(samples, order)
    if order < 2:
        return m
    var = m[2]
    out = m.copy()
    if var <= 0.0:
        # Degenerate sample: emit the moments of a point mass embedded in
        # the Pearson plane (skew 0, kurt 3) so reconstruction degrades to
        # a narrow normal instead of dividing by zero.
        out[2] = 0.0
        if order >= 3:
            out[3] = 0.0
        if order >= 4:
            out[4] = 3.0
        return out
    scale = var ** (np.arange(order + 1) / 2.0)
    out = m / scale
    out[2] = 1.0
    return out


def moment_vector(samples) -> MomentVector:
    """First four moments of *samples* as a :class:`MomentVector`."""
    x = as_sample_array(samples, min_size=1)
    m = central_moments(x, 4)
    mean = float(x.mean())
    std = float(np.sqrt(m[2]))
    if m[2] <= 0.0:
        return MomentVector(mean, 0.0, 0.0, 3.0)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        skew = float(m[3] / m[2] ** 1.5)
        kurt = float(m[4] / m[2] ** 2)
    if not (np.isfinite(skew) and np.isfinite(kurt)):
        # Variance so small that its powers underflow: treat the sample
        # as a point mass with Gaussian shape parameters.
        return MomentVector(mean, std, 0.0, 3.0)
    return MomentVector(mean, std, skew, kurt)


def moment_matrix(samples_2d) -> np.ndarray:
    """Row-wise four-moment summary of a 2-D array.

    Parameters
    ----------
    samples_2d:
        Array of shape ``(n_series, n_samples)``; each row is summarized
        independently.

    Returns
    -------
    ndarray of shape ``(n_series, 4)`` with columns (mean, std, skew, kurt).

    Fully vectorized across rows — this is the hot path when featurizing
    per-metric statistics over runs.
    """
    x = np.asarray(samples_2d, dtype=np.float64)
    if x.ndim != 2:
        raise MomentError(f"expected 2-D input, got shape {x.shape}")
    mean = x.mean(axis=1)
    centered = x - mean[:, None]
    m2 = (centered**2).mean(axis=1)
    m3 = (centered**3).mean(axis=1)
    m4 = (centered**4).mean(axis=1)
    std = np.sqrt(m2)
    with np.errstate(divide="ignore", invalid="ignore"):
        skew = np.where(m2 > 0.0, m3 / np.where(m2 > 0, m2, 1.0) ** 1.5, 0.0)
        kurt = np.where(m2 > 0.0, m4 / np.where(m2 > 0, m2, 1.0) ** 2, 3.0)
    return np.column_stack([mean, std, skew, kurt])


def is_feasible(skew: float, kurt: float) -> bool:
    """Whether ``(skew, kurt)`` satisfies the moment inequality.

    Every real distribution obeys ``kurt >= skew**2 + 1`` (with equality
    only for two-point distributions).
    """
    return bool(np.isfinite(skew) and np.isfinite(kurt) and kurt >= skew * skew + 1.0)


def check_feasible(skew: float, kurt: float) -> None:
    """Raise :class:`~repro.errors.MomentError` when infeasible."""
    if not is_feasible(skew, kurt):
        raise MomentError(
            f"infeasible moments: kurtosis {kurt:.6g} < skew**2 + 1 = "
            f"{skew * skew + 1.0:.6g}"
        )


def nearest_feasible(
    mean: float, std: float, skew: float, kurt: float, *, margin: float = KURTOSIS_MARGIN
) -> tuple[float, float, float, float]:
    """Project a (possibly noisy / predicted) moment vector into feasibility.

    Model predictions of skewness and kurtosis can violate the
    ``kurt >= skew**2 + 1`` bound; rather than failing reconstruction we
    clip kurtosis up to the boundary plus *margin* and force a non-negative
    standard deviation.  The mean is passed through untouched.
    """
    std = max(float(std), 0.0)
    skew = float(skew) if np.isfinite(skew) else 0.0
    kurt = float(kurt) if np.isfinite(kurt) else 3.0
    lower = skew * skew + 1.0 + margin
    if kurt < lower:
        kurt = lower
    return float(mean), std, skew, kurt
