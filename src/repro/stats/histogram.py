"""Histogram representation of a distribution.

The paper's first distribution representation (Section III-B2) is "the bins
of a histogram of the relative time, similar to a discretized PDF".  This
module provides a fixed-grid density histogram that supports the three
operations the pipelines need:

* encode a sample into a density vector (the prediction *target*);
* decode a predicted density vector back into a distribution (CDF on the
  grid + sampling), for KS scoring and visualization;
* a shared grid across applications, since predicted vectors from different
  benchmarks must be comparable feature-wise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_sample_array, check_random_state
from ..errors import ValidationError

__all__ = ["HistogramGrid", "DensityHistogram"]

#: Default relative-time support used across the library.  Relative time is
#: mean-normalized so mass concentrates near 1.0; the paper's Fig. 3 shows
#: support roughly within [0.95, 1.4] with rare long tails (clipped into
#: the boundary bins by :meth:`HistogramGrid.encode`).
DEFAULT_LOW = 0.85
DEFAULT_HIGH = 1.45
DEFAULT_BINS = 32


@dataclass(frozen=True)
class HistogramGrid:
    """A fixed binning of the relative-time axis shared across benchmarks."""

    low: float = DEFAULT_LOW
    high: float = DEFAULT_HIGH
    n_bins: int = DEFAULT_BINS

    def __post_init__(self) -> None:
        if not (self.high > self.low):
            raise ValidationError(
                f"histogram grid requires high > low, got [{self.low}, {self.high}]"
            )
        if self.n_bins < 2:
            raise ValidationError(f"n_bins must be >= 2, got {self.n_bins}")

    @property
    def edges(self) -> np.ndarray:
        """Bin edges, length ``n_bins + 1``."""
        return np.linspace(self.low, self.high, self.n_bins + 1)

    @property
    def centers(self) -> np.ndarray:
        """Bin centers, length ``n_bins``."""
        e = self.edges
        return 0.5 * (e[:-1] + e[1:])

    @property
    def width(self) -> float:
        """Uniform bin width."""
        return (self.high - self.low) / self.n_bins

    def encode(self, samples) -> np.ndarray:
        """Density-normalized bin heights of *samples* on this grid.

        Samples outside the grid are clipped into the boundary bins so no
        probability mass is silently dropped (long daemon-interference
        tails land in the last bin rather than vanishing).
        """
        x = as_sample_array(samples, min_size=1)
        clipped = np.clip(x, self.low, np.nextafter(self.high, -np.inf))
        counts, _ = np.histogram(clipped, bins=self.edges)
        return counts / (x.size * self.width)

    def histogram(self, samples) -> "DensityHistogram":
        """Encode *samples* into a :class:`DensityHistogram`."""
        return DensityHistogram(self, self.encode(samples))


@dataclass(frozen=True)
class DensityHistogram:
    """A (possibly predicted) density vector bound to its grid.

    Negative predicted heights are clipped at zero and the density is
    renormalized to integrate to one at construction, so downstream CDF and
    sampling operations are always well defined.
    """

    grid: HistogramGrid
    density: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        d = np.asarray(self.density, dtype=np.float64)
        if d.shape != (self.grid.n_bins,):
            raise ValidationError(
                f"density must have shape ({self.grid.n_bins},), got {d.shape}"
            )
        d = np.clip(d, 0.0, None)
        total = d.sum() * self.grid.width
        if total <= 0.0:
            # A fully-zero prediction degrades to the uniform density on
            # the grid; this keeps KS finite instead of crashing.
            d = np.full(self.grid.n_bins, 1.0 / (self.grid.high - self.grid.low))
        else:
            d = d / total
        object.__setattr__(self, "density", d)

    @property
    def probabilities(self) -> np.ndarray:
        """Per-bin probability mass (sums to 1)."""
        return self.density * self.grid.width

    def cdf_on_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """(edges, CDF at edges) — piecewise-linear CDF tabulation."""
        cdf = np.concatenate([[0.0], np.cumsum(self.probabilities)])
        cdf[-1] = 1.0
        return self.grid.edges, cdf

    def cdf(self, x) -> np.ndarray:
        """Evaluate the piecewise-linear CDF at query points *x*."""
        edges, cdf = self.cdf_on_edges()
        out = np.interp(np.asarray(x, dtype=np.float64), edges, cdf, left=0.0, right=1.0)
        # interp can exceed 1 by one ulp when cumsum rounding stacks up.
        return np.clip(out, 0.0, 1.0)

    def sample(self, n: int, rng=None) -> np.ndarray:
        """Draw *n* samples via inverse-CDF with uniform jitter inside bins."""
        gen = check_random_state(rng)
        if n <= 0:
            raise ValidationError(f"n must be positive, got {n}")
        probs = self.probabilities
        bins = gen.choice(self.grid.n_bins, size=n, p=probs / probs.sum())
        offsets = gen.random(n)
        edges = self.grid.edges
        return edges[bins] + offsets * self.grid.width

    def mean(self) -> float:
        """Mean of the histogram density (mass at bin centers)."""
        return float(np.sum(self.grid.centers * self.probabilities))
