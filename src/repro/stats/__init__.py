"""Statistical substrate: moments, densities, tests, reconstructions.

Everything the prediction pipelines need to treat performance as a
*distribution* rather than a scalar:

* :mod:`~repro.stats.moments` — four-moment summaries and feasibility;
* :mod:`~repro.stats.empirical` — ECDF, quantiles, relative time;
* :mod:`~repro.stats.histogram` — fixed-grid density histograms;
* :mod:`~repro.stats.kde` — Gaussian kernel density estimation;
* :mod:`~repro.stats.ks` — Kolmogorov–Smirnov statistics;
* :mod:`~repro.stats.pearson` — the Pearson system (``pearsrnd``);
* :mod:`~repro.stats.maxent` — maximum-entropy reconstruction (PyMaxEnt);
* :mod:`~repro.stats.lognormal` — shared lognormal percentile→moment math;
* :mod:`~repro.stats.bootstrap` — bootstrap CIs and adaptive stopping.
"""

from .bootstrap import AdaptiveStoppingRule, StoppingDecision, bootstrap_ci, bootstrap_statistic
from .empirical import ECDF, quantiles, relative_time, summary_quantiles, trim_outliers
from .histogram import DensityHistogram, HistogramGrid
from .kde import GaussianKDE, scott_bandwidth, silverman_bandwidth
from .ks import (
    KSResult,
    ks_2samp,
    ks_against_cdf,
    ks_against_grid_cdf,
    ks_statistic,
    ks_statistic_many,
)
from .lognormal import (
    Z99,
    cs2_from_moments,
    cs2_from_percentiles,
    fit_lognormal,
    lognormal_cdf,
    lognormal_moments,
    lognormal_quantile,
    sigma_from_percentiles,
)
from .maxent import MaxEntDensity, maxent_from_moments
from .modes import Mode, ModeAgreement, find_modes, mode_agreement
from .moments import (
    MomentVector,
    central_moments,
    check_feasible,
    is_feasible,
    moment_matrix,
    moment_vector,
    nearest_feasible,
    standardized_moments,
)
from .pearson import PearsonDistribution, classify_pearson, pearson_system, pearsrnd

__all__ = [
    "AdaptiveStoppingRule",
    "StoppingDecision",
    "bootstrap_ci",
    "bootstrap_statistic",
    "ECDF",
    "quantiles",
    "relative_time",
    "summary_quantiles",
    "trim_outliers",
    "DensityHistogram",
    "HistogramGrid",
    "GaussianKDE",
    "scott_bandwidth",
    "silverman_bandwidth",
    "KSResult",
    "ks_2samp",
    "ks_against_cdf",
    "ks_against_grid_cdf",
    "ks_statistic",
    "ks_statistic_many",
    "Z99",
    "cs2_from_moments",
    "cs2_from_percentiles",
    "fit_lognormal",
    "lognormal_cdf",
    "lognormal_moments",
    "lognormal_quantile",
    "sigma_from_percentiles",
    "MaxEntDensity",
    "maxent_from_moments",
    "Mode",
    "ModeAgreement",
    "find_modes",
    "mode_agreement",
    "MomentVector",
    "central_moments",
    "check_feasible",
    "is_feasible",
    "moment_matrix",
    "moment_vector",
    "nearest_feasible",
    "standardized_moments",
    "PearsonDistribution",
    "classify_pearson",
    "pearson_system",
    "pearsrnd",
]
