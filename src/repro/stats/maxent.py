"""Maximum-entropy density reconstruction from moments (PyMaxEnt).

The paper's second distribution representation (Section III-B2) predicts
the first four moments and reconstructs the density with the principle of
maximum entropy, citing the PyMaxEnt package [Saad & Ruai, SoftwareX 2019].
This module reimplements that algorithm:

Given raw moments ``mu_0..mu_k`` on a finite support ``[a, b]``, find the
density ``p(x) = exp(sum_j lambda_j x^j)`` whose moments match.  The
Lagrange multipliers solve a smooth convex problem; we use a damped Newton
iteration where both the residual (moments of the current density) and the
Hessian (moments of order ``i + j``) are computed by vectorized quadrature
on a fixed grid.

For numerical conditioning the solve happens in a standardized coordinate
(``z = (x - mean)/std``) and the result is mapped back, so extreme relative
-time scales cannot break the Vandermonde-like Hessian.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_float_array
from ..errors import ConvergenceError, MomentError
from .moments import MomentVector, nearest_feasible

__all__ = ["MaxEntDensity", "maxent_from_moments", "reconstruct"]

_DEFAULT_GRID = 2001


def _raw_moments_from_standardized(skew: float, kurt: float) -> np.ndarray:
    """Raw moments mu_0..mu_4 of the standardized (mean 0, var 1) target."""
    return np.array([1.0, 0.0, 1.0, skew, kurt], dtype=np.float64)


def _raw_moments_from_location_scale(
    mean: float, std: float, skew: float, kurt: float
) -> np.ndarray:
    """Raw moments mu_0..mu_4 of ``X = mean + std*Z`` with Z standardized."""
    m, s = mean, std
    return np.array(
        [
            1.0,
            m,
            m * m + s * s,
            m**3 + 3.0 * m * s * s + s**3 * skew,
            m**4 + 6.0 * m * m * s * s + 4.0 * m * s**3 * skew + s**4 * kurt,
        ],
        dtype=np.float64,
    )


def _rebase_polynomial(raw_lambdas: np.ndarray, mean: float, std: float) -> np.ndarray:
    """Re-express ``poly(x)`` coefficients as ``poly(z)`` with x = mean + std*z.

    ``c_i = sum_{j >= i} a_j * C(j, i) * mean**(j-i) * std**i``.
    """
    from math import comb

    k = raw_lambdas.size
    out = np.zeros(k)
    for i in range(k):
        for j in range(i, k):
            out[i] += raw_lambdas[j] * comb(j, i) * mean ** (j - i) * std**i
    return out


@dataclass(frozen=True)
class MaxEntDensity:
    """A maximum-entropy density ``exp(poly(z))`` on a finite support.

    Attributes
    ----------
    lambdas:
        Polynomial coefficients (lambda_0..lambda_k) in the standardized
        coordinate ``z``.
    mean, std:
        Affine map back to the original coordinate: ``x = mean + std*z``.
    z_grid:
        Standardized support grid used for quadrature and CDF tabulation.
    """

    lambdas: np.ndarray
    mean: float
    std: float
    z_grid: np.ndarray

    def _z_pdf(self, z: np.ndarray) -> np.ndarray:
        powers = z[:, None] ** np.arange(self.lambdas.size)[None, :]
        # Clip the exponent: off-solution multipliers (PyMaxEnt-style
        # non-converged solves) can push it past the float64 range.
        return np.exp(np.clip(powers @ self.lambdas, -700.0, 700.0))

    def pdf(self, x) -> np.ndarray:
        """Density at *x* in the original coordinate (0 outside support)."""
        xq = np.atleast_1d(np.asarray(x, dtype=np.float64))
        z = (xq - self.mean) / self.std
        out = np.zeros_like(z)
        inside = (z >= self.z_grid[0]) & (z <= self.z_grid[-1])
        out[inside] = self._z_pdf(z[inside]) / self.std
        return out

    def grid_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """(x grid, CDF values) tabulated on the quadrature grid."""
        w = self._z_pdf(self.z_grid)
        dz = self.z_grid[1] - self.z_grid[0]
        cum = np.concatenate([[0.0], np.cumsum((w[1:] + w[:-1]) * 0.5 * dz)])
        cum /= cum[-1]
        x = self.mean + self.std * self.z_grid
        return x, cum

    def cdf(self, x) -> np.ndarray:
        """CDF at *x* via the tabulated grid (clamped outside support)."""
        gx, gc = self.grid_cdf()
        xq = np.atleast_1d(np.asarray(x, dtype=np.float64))
        return np.interp(xq, gx, gc, left=0.0, right=1.0)

    def sample(self, n: int, rng=None) -> np.ndarray:
        """Inverse-CDF sampling of *n* points."""
        from .._validation import check_random_state

        gen = check_random_state(rng)
        gx, gc = self.grid_cdf()
        u = gen.random(n)
        return np.interp(u, gc, gx)


def _solve_lambdas_undamped(
    target: np.ndarray,
    z_grid: np.ndarray,
    *,
    max_iter: int,
    tol: float,
    init: str = "normal",
) -> np.ndarray:
    """Plain (undamped) Newton solve — the PyMaxEnt package's behaviour.

    The cited SoftwareX package drives ``scipy.optimize.fsolve`` with no
    step control from a near-zero initialization, and — critically —
    **returns the last iterate whether or not it converged**.  Away from
    Gaussian-like targets the iteration wanders, and the caller silently
    reconstructs a density from off-solution multipliers.  Reproducing
    that behaviour matters: it is what makes the paper's PyMaxEnt
    representation score worse than PearsonRnd.

    Returns ``(lambdas, max_residual)`` — the caller decides whether a
    partially-converged iterate is usable (PyMaxEnt reconstructs from it
    regardless; a totally-diverged iterate yields NaN densities that any
    user would discard).
    """
    k = target.size - 1
    orders = np.arange(2 * k + 1)
    powers = z_grid[:, None] ** orders[None, :]
    dz = z_grid[1] - z_grid[0]
    trap_w = np.full(z_grid.size, dz)
    trap_w[0] = trap_w[-1] = dz / 2.0

    lambdas = np.zeros(k + 1)
    if init == "normal":
        lambdas[0] = -0.5 * np.log(2.0 * np.pi)
        if k >= 2:
            lambdas[2] = -0.5
    # init == "zeros": PyMaxEnt's own starting point (uniform density).
    last_finite = lambdas.copy()
    last_resid = np.inf

    idx = np.add.outer(np.arange(k + 1), np.arange(k + 1))
    for _ in range(max_iter):
        with np.errstate(over="ignore", invalid="ignore"):
            p = np.exp(np.clip(powers[:, : k + 1] @ lambdas, -700.0, 700.0))
            all_moments = powers.T @ (p * trap_w)
        residual = all_moments[: k + 1] - target
        if not np.all(np.isfinite(residual)):
            # Iterate left the representable region: fsolve would keep
            # thrashing and hand back a junk iterate; report the last
            # finite one with its residual.
            return last_finite, last_resid
        resid_norm = float(np.max(np.abs(residual)))
        last_finite = lambdas.copy()
        last_resid = resid_norm
        if resid_norm < tol:
            return lambdas, resid_norm
        hess = all_moments[idx]
        try:
            step = np.linalg.solve(hess, residual)
        except np.linalg.LinAlgError:
            return last_finite, last_resid
        lambdas = lambdas - step
        if not np.all(np.isfinite(lambdas)) or np.max(np.abs(lambdas)) > 1e8:
            return last_finite, last_resid
    # Out of iterations: fsolve returns the current iterate regardless.
    return last_finite, last_resid


def _solve_lambdas(
    target: np.ndarray,
    z_grid: np.ndarray,
    *,
    max_iter: int,
    tol: float,
) -> np.ndarray:
    """Damped Newton solve for the Lagrange multipliers.

    ``target`` are raw moments mu_0..mu_k in the standardized coordinate.
    """
    k = target.size - 1
    orders = np.arange(2 * k + 1)
    # Power table reused across iterations: shape (n_grid, 2k+1).
    powers = z_grid[:, None] ** orders[None, :]
    dz = z_grid[1] - z_grid[0]
    trap_w = np.full(z_grid.size, dz)
    trap_w[0] = trap_w[-1] = dz / 2.0

    # Start from a standard normal-like initialization.
    lambdas = np.zeros(k + 1)
    lambdas[0] = -0.5 * np.log(2.0 * np.pi)
    if k >= 2:
        lambdas[2] = -0.5

    for _ in range(max_iter):
        with np.errstate(over="ignore"):
            p = np.exp(np.clip(powers[:, : k + 1] @ lambdas, -700.0, 700.0))
        weighted = p * trap_w
        all_moments = powers.T @ weighted  # mu_0..mu_2k of current density
        residual = all_moments[: k + 1] - target
        if np.max(np.abs(residual)) < tol:
            return lambdas
        # Hessian H[i, j] = mu_{i+j} of the current density.
        idx = np.add.outer(np.arange(k + 1), np.arange(k + 1))
        hess = all_moments[idx]
        try:
            step = np.linalg.solve(hess, residual)
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(f"singular MaxEnt Hessian: {exc}") from exc
        # Damped update: halve until the density stays finite and the
        # residual does not explode.
        scale = 1.0
        base_norm = float(np.max(np.abs(residual)))
        for _ in range(30):
            trial = lambdas - scale * step
            with np.errstate(over="ignore"):
                p_t = np.exp(np.clip(powers[:, : k + 1] @ trial, -700.0, 700.0))
            m_t = powers[:, : k + 1].T @ (p_t * trap_w)
            r_t = float(np.max(np.abs(m_t - target)))
            if np.isfinite(r_t) and r_t < base_norm:
                lambdas = trial
                break
            scale *= 0.5
        else:
            raise ConvergenceError("MaxEnt line search failed to reduce residual")
    raise ConvergenceError(
        f"MaxEnt Newton did not converge in {max_iter} iterations "
        f"(residual {np.max(np.abs(residual)):.3g})"
    )


def maxent_from_moments(
    mean: float,
    std: float,
    skew: float,
    kurt: float,
    *,
    support_sigmas: float = 8.0,
    support: tuple[float, float] | None = None,
    n_grid: int = _DEFAULT_GRID,
    max_iter: int = 200,
    tol: float = 1e-9,
    project: bool = True,
    solver: str = "damped",
) -> MaxEntDensity:
    """Reconstruct a maximum-entropy density from four moments.

    Parameters
    ----------
    mean, std, skew, kurt:
        Target moments (kurt is standardized, normal = 3).
    support_sigmas:
        Half-width of the reconstruction support in standard deviations
        (ignored when ``support`` is given).
    support:
        Absolute ``(low, high)`` support in the original coordinate —
        PyMaxEnt-style fixed bounds.  The solve still happens in the
        standardized coordinate, so a fixed absolute support becomes
        asymmetric/huge in sigma units for off-center or narrow targets,
        which is exactly the conditioning hazard of fixed bounds.
    project:
        Project infeasible moment vectors to feasibility first (needed for
        ML-predicted moments).
    solver:
        ``"damped"`` (robust line-searched Newton, this library's default)
        or ``"pymaxent"`` (undamped Newton emulating the cited package's
        fsolve behaviour — fails where PyMaxEnt fails).

    Raises
    ------
    ConvergenceError
        If the Newton iteration cannot match the moments (e.g. the target
        is too close to the feasibility boundary for an exponential-family
        density on the chosen support).
    """
    if project:
        mean, std, skew, kurt = nearest_feasible(mean, std, skew, kurt)
    elif kurt < skew * skew + 1.0:
        raise MomentError(
            f"infeasible moments for MaxEnt: kurt={kurt:.4g} < skew^2+1="
            f"{skew * skew + 1.0:.4g}"
        )
    if std <= 0.0:
        raise MomentError("MaxEnt reconstruction requires std > 0")
    target = _raw_moments_from_standardized(skew, kurt)
    if support is not None:
        lo, hi = (float(support[0]) - mean) / std, (float(support[1]) - mean) / std
        if not hi > lo:
            raise MomentError(f"empty MaxEnt support {support}")
        # Cap the standardized support so the Vandermonde powers stay
        # representable; beyond ~60 sigma there is no density mass anyway.
        lo, hi = max(lo, -60.0), min(hi, 60.0)
        if not hi > lo:
            raise MomentError(f"support {support} excludes the distribution body")
        z_grid = np.linspace(lo, hi, n_grid)
    else:
        z_grid = np.linspace(-support_sigmas, support_sigmas, n_grid)
    if solver == "damped":
        lambdas = _solve_lambdas(target, z_grid, max_iter=max_iter, tol=tol)
    elif solver == "pymaxent":
        # The cited package solves in RAW coordinates: the Lagrange
        # system is built from raw moments mu_0..mu_4 on the absolute
        # support, with no standardization.  For relative-time
        # distributions concentrated near 1.0 the raw power moments are
        # all ~1 and the Hessian is catastrophically ill-conditioned, so
        # the solve degrades exactly where the paper's PyMaxEnt scores
        # degrade: on narrow distributions.  The solved polynomial is
        # converted back to the standardized coordinate afterwards so
        # MaxEntDensity's bookkeeping stays uniform.
        x_lo = mean + std * z_grid[0]
        x_hi = mean + std * z_grid[-1]
        x_grid = np.linspace(x_lo, x_hi, z_grid.size)
        raw_target = _raw_moments_from_location_scale(mean, std, skew, kurt)
        raw_lambdas, resid = _solve_lambdas_undamped(
            raw_target,
            x_grid,
            max_iter=min(max_iter, 100),
            tol=max(tol, 1e-8),
            init="zeros",
        )
        if not np.all(np.isfinite(raw_lambdas)):
            raise ConvergenceError("PyMaxEnt-style raw-coordinate solve produced NaNs")
        lambdas = _rebase_polynomial(raw_lambdas, mean, std)
        del resid  # fsolve semantics: the iterate is used regardless
    else:
        raise MomentError(f"unknown MaxEnt solver {solver!r}")
    return MaxEntDensity(lambdas=lambdas, mean=mean, std=std, z_grid=z_grid)


def reconstruct(moments: MomentVector, **kwargs) -> MaxEntDensity:
    """Convenience wrapper taking a :class:`~repro.stats.moments.MomentVector`."""
    return maxent_from_moments(
        moments.mean, moments.std, moments.skew, moments.kurt, **kwargs
    )
