"""Kolmogorov–Smirnov statistics.

The paper scores every predicted distribution with the KS statistic against
the measured 1,000-run distribution (Section IV-E): 0 is a perfect match
and values approach 1 as agreement degrades.  Two variants are needed:

* **two-sample** KS — used for the PearsonRnd representation, where the
  prediction is itself a random sample;
* **sample-vs-CDF** KS — used for the Histogram and PyMaxEnt
  representations, where the prediction is a density/CDF on a grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_sample_array
from ..errors import ValidationError

__all__ = [
    "KSResult",
    "ks_2samp",
    "ks_statistic",
    "ks_statistic_many",
    "ks_against_cdf",
    "ks_against_grid_cdf",
    "kolmogorov_sf",
]


@dataclass(frozen=True)
class KSResult:
    """KS test outcome: the statistic and its asymptotic p-value."""

    statistic: float
    pvalue: float


def kolmogorov_sf(t: float) -> float:
    """Survival function of the Kolmogorov distribution at *t*.

    Uses the alternating-series representation
    ``Q(t) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 t^2)``, truncated once
    terms drop below 1e-16 (at most ~100 terms for tiny *t*).
    """
    if t <= 0.0:
        return 1.0
    k = np.arange(1, 101, dtype=np.float64)
    terms = np.exp(-2.0 * (k * t) ** 2)
    signs = np.where(k % 2 == 1, 1.0, -1.0)
    val = 2.0 * float(np.sum(signs * terms))
    return float(min(max(val, 0.0), 1.0))


def ks_statistic(a, b) -> float:
    """Two-sample KS statistic only (no p-value); hot-path variant.

    Vectorized merge of the two sorted samples — O((n+m) log(n+m)).
    """
    x = np.sort(as_sample_array(a, name="a", min_size=1))
    y = np.sort(as_sample_array(b, name="b", min_size=1))
    grid = np.concatenate([x, y])
    cdf_x = np.searchsorted(x, grid, side="right") / x.size
    cdf_y = np.searchsorted(y, grid, side="right") / y.size
    return float(np.max(np.abs(cdf_x - cdf_y)))


def ks_statistic_many(preds, measured) -> np.ndarray:
    """Two-sample KS of many prediction samples against one measured sample.

    Bit-identical to calling :func:`ks_statistic` per prediction — the
    per-pair arithmetic is the same searchsorted merge — but the measured
    sample is validated and sorted exactly once, which matters when the
    same 1,000-run campaign is scored against dozens of predicted samples
    (the probe-size sweep, the direction study).
    """
    work = list(preds)
    y = np.sort(as_sample_array(measured, name="measured", min_size=1))
    out = np.empty(len(work), dtype=np.float64)
    for i, pred in enumerate(work):
        x = np.sort(as_sample_array(pred, name="pred", min_size=1))
        grid = np.concatenate([x, y])
        cdf_x = np.searchsorted(x, grid, side="right") / x.size
        cdf_y = np.searchsorted(y, grid, side="right") / y.size
        out[i] = np.max(np.abs(cdf_x - cdf_y))
    return out


def ks_2samp(a, b) -> KSResult:
    """Two-sample Kolmogorov–Smirnov test with asymptotic p-value."""
    x = as_sample_array(a, name="a", min_size=1)
    y = as_sample_array(b, name="b", min_size=1)
    d = ks_statistic(x, y)
    n, m = x.size, y.size
    en = np.sqrt(n * m / (n + m))
    pvalue = kolmogorov_sf((en + 0.12 + 0.11 / en) * d)
    return KSResult(d, pvalue)


def ks_against_cdf(samples, cdf) -> KSResult:
    """One-sample KS test of *samples* against a callable CDF.

    *cdf* must be vectorized over a float array and return values in
    [0, 1].  The statistic is the classic
    ``max(|F_n(x_i) - F(x_i)|, |F_n(x_{i-1}) - F(x_i)|)`` over the sorted
    sample.
    """
    x = np.sort(as_sample_array(samples, min_size=1))
    n = x.size
    f = np.asarray(cdf(x), dtype=np.float64)
    if f.shape != x.shape:
        raise ValidationError(
            f"cdf returned shape {f.shape}, expected {x.shape}"
        )
    if np.any((f < -1e-9) | (f > 1.0 + 1e-9)):
        raise ValidationError("cdf values must lie in [0, 1]")
    f = np.clip(f, 0.0, 1.0)
    ecdf_hi = np.arange(1, n + 1) / n
    ecdf_lo = np.arange(0, n) / n
    d = float(max(np.max(ecdf_hi - f), np.max(f - ecdf_lo)))
    en = np.sqrt(n)
    pvalue = kolmogorov_sf((en + 0.12 + 0.11 / en) * d)
    return KSResult(d, pvalue)


def ks_against_grid_cdf(samples, grid, grid_cdf) -> KSResult:
    """One-sample KS test against a CDF tabulated on a grid.

    The tabulated CDF is linearly interpolated inside the grid and clamped
    to {0, 1} outside, matching how a histogram/MaxEnt density integrates
    to a piecewise-linear CDF.
    """
    g = as_sample_array(grid, name="grid", min_size=2)
    c = as_sample_array(grid_cdf, name="grid_cdf", min_size=2)
    if g.shape != c.shape:
        raise ValidationError("grid and grid_cdf must have the same shape")
    if np.any(np.diff(g) <= 0.0):
        raise ValidationError("grid must be strictly increasing")
    c = np.clip(c, 0.0, 1.0)
    # Monotone repair against tiny numerical dips from quadrature.
    c = np.maximum.accumulate(c)

    def cdf(x):
        return np.interp(x, g, c, left=0.0, right=1.0)

    return ks_against_cdf(samples, cdf)
