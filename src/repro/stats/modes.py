"""Mode detection and comparison for performance distributions.

The paper's qualitative analysis (Figs. 1, 5, 9) judges predictions by
whether they recover "the number of modes as well as their relative
locations and sizes".  This module makes that judgement quantitative:

* :func:`find_modes` — KDE-based mode detection with prominence
  filtering (ignores noise wiggles);
* :func:`mode_agreement` — a structured comparison of two samples' mode
  sets: count match, location error, mass error.

Used by tests and available to users for automated analysis of predicted
distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_sample_array
from ..errors import ValidationError
from .kde import GaussianKDE

__all__ = ["Mode", "find_modes", "mode_agreement", "ModeAgreement"]


@dataclass(frozen=True)
class Mode:
    """One detected mode: its location, peak density, and mass share.

    ``mass`` is the probability mass of the KDE between the valleys
    flanking the peak (modes partition the sample).
    """

    location: float
    density: float
    mass: float


def find_modes(
    samples,
    *,
    n_grid: int = 512,
    min_prominence: float = 0.08,
    min_mass: float = 0.03,
    bandwidth: float | str = "silverman",
) -> list[Mode]:
    """Detect the modes of a sample's KDE.

    Parameters
    ----------
    samples:
        1-D data (e.g. relative times).
    n_grid:
        KDE evaluation resolution.
    min_prominence:
        A local maximum only counts as a mode if it rises above its
        flanking valleys by at least this fraction of the global peak —
        filters smoothing wiggles.
    min_mass:
        Modes carrying less probability mass than this are merged into
        their neighbour (daemon-spike tails are not "modes").
    bandwidth:
        KDE bandwidth rule or value.

    Returns modes sorted by location (ascending).
    """
    x = as_sample_array(samples, min_size=2)
    kde = GaussianKDE.fit(x, bandwidth=bandwidth)
    grid = kde.grid(n_grid)
    dens = kde.pdf(grid)
    top = float(dens.max())
    if top <= 0.0:
        raise ValidationError("degenerate density: no modes detectable")

    interior = dens[1:-1]
    is_peak = (interior >= dens[:-2]) & (interior > dens[2:])
    peak_idx = np.nonzero(is_peak)[0] + 1
    if peak_idx.size == 0:
        peak_idx = np.array([int(np.argmax(dens))])

    # Prominence: height above the higher of the two flanking valleys.
    kept: list[int] = []
    for p in peak_idx:
        left_min = dens[: p + 1].min() if not kept else dens[kept[-1] : p + 1].min()
        right_min = dens[p:].min()
        prominence = dens[p] - max(left_min, right_min)
        if prominence >= min_prominence * top:
            kept.append(int(p))
    if not kept:
        kept = [int(np.argmax(dens))]

    # Partition the grid at the valleys between consecutive kept peaks.
    boundaries = [0]
    for a, b in zip(kept, kept[1:]):
        boundaries.append(a + int(np.argmin(dens[a:b])))
    boundaries.append(len(grid) - 1)

    dg = grid[1] - grid[0]
    modes: list[Mode] = []
    for i, p in enumerate(kept):
        lo, hi = boundaries[i], boundaries[i + 1]
        mass = float(np.trapezoid(dens[lo : hi + 1], dx=dg))
        modes.append(Mode(location=float(grid[p]), density=float(dens[p]), mass=mass))

    # Merge sub-threshold-mass modes into the nearest neighbour.
    total = sum(m.mass for m in modes) or 1.0
    modes = [Mode(m.location, m.density, m.mass / total) for m in modes]
    while len(modes) > 1 and min(m.mass for m in modes) < min_mass:
        j = int(np.argmin([m.mass for m in modes]))
        k = j - 1 if j > 0 else j + 1
        absorbed = modes.pop(j)
        host = modes[k if k < j else k - 1]
        merged = Mode(host.location, host.density, host.mass + absorbed.mass)
        modes[k if k < j else k - 1] = merged
    return sorted(modes, key=lambda m: m.location)


@dataclass(frozen=True)
class ModeAgreement:
    """Comparison of two mode sets (e.g. measured vs predicted)."""

    n_measured: int
    n_predicted: int
    count_match: bool
    location_error: float  # mean |Δlocation| over matched modes
    mass_error: float  # mean |Δmass| over matched modes


def mode_agreement(measured_samples, predicted_samples, **kwargs) -> ModeAgreement:
    """Quantify how well predicted modes match measured modes.

    Modes are matched greedily in location order; unmatched modes count
    against ``count_match`` but not the matched-pair errors.
    """
    m = find_modes(measured_samples, **kwargs)
    p = find_modes(predicted_samples, **kwargs)
    k = min(len(m), len(p))
    if k == 0:
        raise ValidationError("no modes found in one of the samples")
    loc_err = float(np.mean([abs(m[i].location - p[i].location) for i in range(k)]))
    mass_err = float(np.mean([abs(m[i].mass - p[i].mass) for i in range(k)]))
    return ModeAgreement(
        n_measured=len(m),
        n_predicted=len(p),
        count_match=len(m) == len(p),
        location_error=loc_err,
        mass_error=mass_err,
    )
