"""The Pearson distribution system (MATLAB ``pearsrnd`` replacement).

The paper's best-performing distribution representation, **PearsonRnd**
(Section III-B2), predicts the first four moments of a runtime distribution
and reconstructs the distribution by drawing random numbers from the member
of the Pearson system with those moments, using MATLAB's ``pearsrnd``.
MATLAB is not available here, so this module reimplements the system from
scratch:

* classification of (skew, kurt) into Pearson types 0–VII using the same
  quadratic-discriminant logic as ``pearsrnd.m`` (unnormalized
  ``c0, c1, c2`` coefficients and ``kappa = c1^2 / (4 c0 c2)``);
* moment-matched samplers for every type — closed-form scipy families for
  types 0/I/II/III/V/VI/VII and a numerically exact inverse-CDF sampler
  for type IV (via the ``x = lam + a*tan(theta)`` substitution that maps
  the infinite support onto ``(-pi/2, pi/2)``).

Every returned distribution matches the requested mean and standard
deviation exactly (affine correction) and the requested skewness/kurtosis
up to the feasibility of its type family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import stats as sps

from .._validation import check_random_state
from ..errors import MomentError, ReconstructionError
from .moments import is_feasible, nearest_feasible

__all__ = [
    "classify_pearson",
    "PearsonDistribution",
    "pearson_system",
    "pearsrnd",
]

_EPS = np.finfo(np.float64).eps


def _pearson_coeffs(skew: float, kurt: float) -> tuple[float, float, float]:
    """Unnormalized Pearson quadratic coefficients (as in ``pearsrnd.m``)."""
    beta1 = skew * skew
    beta2 = kurt
    c0 = 4.0 * beta2 - 3.0 * beta1
    c1 = skew * (beta2 + 3.0)
    c2 = 2.0 * beta2 - 3.0 * beta1 - 6.0
    return c0, c1, c2


def classify_pearson(skew: float, kurt: float) -> int:
    """Return the Pearson type (0–7) for standardized moments.

    Mirrors MATLAB ``pearsrnd``:

    * ``c1 == 0`` (symmetric): type 0 if kurt == 3, II if kurt < 3,
      VII if kurt > 3;
    * ``c2 == 0`` (gamma line): type III;
    * otherwise by ``kappa = c1^2 / (4 c0 c2)``: I if kappa < 0,
      IV if 0 < kappa < 1, V if kappa == 1, VI if kappa > 1.
    """
    if not is_feasible(skew, kurt):
        raise MomentError(
            f"(skew={skew:.6g}, kurt={kurt:.6g}) violates kurt >= skew**2 + 1"
        )
    c0, c1, c2 = _pearson_coeffs(skew, kurt)
    tol = 1e-10
    if abs(c1) < tol:
        if abs(kurt - 3.0) < tol:
            return 0
        return 2 if kurt < 3.0 else 7
    if abs(c2) < tol * max(1.0, abs(kurt)):
        return 3
    kappa = c1 * c1 / (4.0 * c0 * c2)
    if kappa < 0.0:
        return 1
    if kappa < 1.0 - np.sqrt(_EPS):
        return 4
    if kappa <= 1.0 + np.sqrt(_EPS):
        return 5
    return 6


# ---------------------------------------------------------------------------
# Per-type moment-matched constructions.  Each builder returns a scipy
# frozen distribution whose skewness/kurtosis match the request; the caller
# applies the final affine mean/std correction.
# ---------------------------------------------------------------------------


def _build_type2(kurt: float):
    """Symmetric beta on a symmetric interval (kurt < 3)."""
    # Symmetric beta(alpha, alpha) has kurt = 3 - 6/(2*alpha + 3).
    alpha = (6.0 / (3.0 - kurt) - 3.0) / 2.0
    if alpha <= 0.0:
        raise ReconstructionError(
            f"type II needs kurt in (1, 3); alpha={alpha:.4g} from kurt={kurt:.4g}"
        )
    return sps.beta(alpha, alpha)


def _build_type7(kurt: float):
    """Student's t (symmetric, kurt > 3)."""
    # t_nu has kurt = 3 + 6/(nu - 4) for nu > 4.
    nu = 4.0 + 6.0 / (kurt - 3.0)
    return sps.t(nu)


def _build_type3(skew: float):
    """Gamma (possibly mirrored), on the line kurt = 1.5*skew**2 + 3."""
    k = 4.0 / (skew * skew)
    return sps.gamma(k)


def _build_type1(skew: float, kurt: float):
    """General beta via the classical method-of-moments solution."""
    # Classical method-of-moments for beta: with b2 the (non-excess)
    # kurtosis, the shape total r = a + b solves
    # r = 6*(b2 - skew^2 - 1) / (6 + 3*skew^2 - 2*b2)
    # (check: symmetric beta(alpha, alpha) gives r = 2*alpha).
    g1 = skew
    denom = 6.0 + 3.0 * g1 * g1 - 2.0 * kurt
    if abs(denom) < 1e-12:
        raise ReconstructionError("beta method-of-moments denominator vanished")
    r = 6.0 * (kurt - g1 * g1 - 1.0) / denom
    if r <= 0.0:
        raise ReconstructionError(f"beta total a+b = {r:.4g} <= 0")
    if abs(g1) < 1e-12:
        a = b = r / 2.0
    else:
        root = 1.0 / np.sqrt(1.0 + 16.0 * (r + 1.0) / ((r + 2.0) ** 2 * g1 * g1))
        a = r / 2.0 * (1.0 - root)
        b = r / 2.0 * (1.0 + root)
        if g1 < 0.0:  # beta(a, b) skews positive when a < b
            a, b = b, a
    if a <= 0.0 or b <= 0.0:
        raise ReconstructionError(f"beta shapes out of range: a={a:.4g}, b={b:.4g}")
    return sps.beta(a, b)


def _build_type5(skew: float):
    """Inverse gamma on the kappa == 1 boundary."""
    # skew of invgamma(alpha) = 4*sqrt(alpha-2)/(alpha-3), alpha > 3.
    g = abs(skew)
    if g < 1e-12:
        raise ReconstructionError("type V requires non-zero skewness")
    # Solve g*(alpha-3) = 4*sqrt(alpha-2): quadratic in u = sqrt(alpha-2):
    # g*u^2 - 4*u - g = 0  =>  u = (4 + sqrt(16 + 4 g^2)) / (2 g).
    u = (4.0 + np.sqrt(16.0 + 4.0 * g * g)) / (2.0 * g)
    alpha = u * u + 2.0
    if alpha <= 4.0:
        raise ReconstructionError(f"type V shape alpha={alpha:.4g} lacks 4th moment")
    return sps.invgamma(alpha)


def _build_type6(skew: float, kurt: float):
    """Beta-prime (Pearson VI) via 2-D numeric moment matching."""
    from scipy.optimize import brentq

    g1 = abs(skew)
    g2e = kurt - 3.0

    def bp_skew_kurt(a: float, b: float) -> tuple[float, float]:
        # Standardized moments of betaprime(a, b); requires b > 4.
        var = a * (a + b - 1.0) / ((b - 2.0) * (b - 1.0) ** 2)
        sk = 2.0 * (2.0 * a + b - 1.0) / (b - 3.0) * np.sqrt(
            (b - 2.0) / (a * (a + b - 1.0))
        )
        ex = 6.0 * (
            a * (a + b - 1.0) * (5.0 * b - 11.0) + (b - 1.0) ** 2 * (b - 2.0)
        ) / (a * (a + b - 1.0) * (b - 3.0) * (b - 4.0))
        del var
        return sk, ex

    # For fixed b, skew is monotone in a; solve a(b) from skew, then match
    # kurtosis by a 1-D search over b.
    def a_from_b(b: float) -> float:
        lo, hi = 1e-8, 1e8

        def f(a: float) -> float:
            return bp_skew_kurt(a, b)[0] - g1

        flo, fhi = f(lo), f(hi)
        if flo * fhi > 0.0:
            raise ReconstructionError("type VI: no matching shape a for skew")
        return brentq(f, lo, hi, xtol=1e-12, rtol=1e-12)

    def kurt_gap(b: float) -> float:
        a = a_from_b(b)
        return bp_skew_kurt(a, b)[1] - g2e

    # skew(a, b) decreases in a toward the limit 4*sqrt(b-2)/(b-3); the
    # target g1 is reachable only when that limit is below g1, i.e. for
    # b beyond the larger root of g1^2*(b-3)^2 = 16*(b-2):
    # b > 3 + (8 + 4*sqrt(g1^2 + 4)) / g1^2.
    lo_b = max(
        4.0, 3.0 + (8.0 + 4.0 * np.sqrt(g1 * g1 + 4.0)) / (g1 * g1)
    ) + 1e-6
    hi_b = 1e6
    glo = kurt_gap(lo_b)
    ghi = kurt_gap(hi_b)
    if glo * ghi > 0.0:
        raise ReconstructionError("type VI: kurtosis not bracketable")
    b = brentq(kurt_gap, lo_b, hi_b, xtol=1e-10, rtol=1e-10)
    a = a_from_b(b)
    return sps.betaprime(a, b)


@dataclass(frozen=True)
class _PearsonIV:
    """Numerically exact Pearson Type IV distribution.

    Density: ``p(x) ∝ [1 + ((x - lam)/a)^2]^(-m) * exp(-nu*atan((x-lam)/a))``.

    Implemented through the substitution ``x = lam + a*tan(theta)`` which
    maps the real line onto ``theta in (-pi/2, pi/2)`` where the integrand
    ``cos(theta)^(2m-2) * exp(-nu*theta)`` is bounded — integration,
    CDF tabulation and inverse-CDF sampling all happen on that compact
    grid with no tail truncation error.
    """

    m: float
    nu: float
    a: float
    lam: float
    n_grid: int = 4001

    def _log_weight(self, theta: np.ndarray) -> np.ndarray:
        """Log of the unnormalized theta-space weight cos^(2m-2) * exp(-nu*theta)."""
        with np.errstate(divide="ignore"):
            return (2.0 * self.m - 2.0) * np.log(
                np.maximum(np.cos(theta), 1e-300)
            ) - self.nu * theta

    def _theta_tables(self) -> tuple[np.ndarray, np.ndarray, float]:
        """(theta grid, shifted weights, log-shift applied)."""
        theta = np.linspace(-np.pi / 2.0, np.pi / 2.0, self.n_grid)
        log_w = self._log_weight(theta)
        shift = float(log_w.max())
        w = np.exp(log_w - shift)
        w[0] = w[-1] = 0.0
        return theta, w, shift

    def _cdf_table(self) -> tuple[np.ndarray, np.ndarray]:
        theta, w, _ = self._theta_tables()
        dtheta = theta[1] - theta[0]
        cum = np.concatenate([[0.0], np.cumsum((w[1:] + w[:-1]) * 0.5 * dtheta)])
        total = cum[-1]
        if total <= 0.0:
            raise ReconstructionError("Pearson IV density integrated to zero")
        return theta, cum / total

    def pdf(self, x) -> np.ndarray:
        xq = np.atleast_1d(np.asarray(x, dtype=np.float64))
        z = (xq - self.lam) / self.a
        theta, w, shift = self._theta_tables()
        dtheta = theta[1] - theta[0]
        total = float(np.sum((w[1:] + w[:-1]) * 0.5 * dtheta))
        # Weight/density relation: w(theta) dtheta = p(x) dx with
        # dx = a * sec^2(theta) dtheta and sec^2(atan z) = 1 + z^2, hence
        # p(x) = exp(log_weight(atan z) - shift) / (total * a * (1 + z^2)).
        theta_q = np.arctan(z)
        log_w_q = self._log_weight(theta_q) - shift
        return np.exp(log_w_q) / (total * self.a * (1.0 + z * z))

    def cdf(self, x) -> np.ndarray:
        xq = np.atleast_1d(np.asarray(x, dtype=np.float64))
        theta_q = np.arctan((xq - self.lam) / self.a)
        theta, cdf = self._cdf_table()
        return np.interp(theta_q, theta, cdf)

    def rvs(self, size: int, random_state=None) -> np.ndarray:
        rng = check_random_state(random_state)
        theta, cdf = self._cdf_table()
        u = rng.random(size)
        theta_s = np.interp(u, cdf, theta)
        return self.lam + self.a * np.tan(theta_s)

    def stats_mv(self) -> tuple[float, float]:
        """Numeric (mean, variance) via the compact-theta quadrature."""
        theta, w, _ = self._theta_tables()
        dtheta = theta[1] - theta[0]
        x = self.lam + self.a * np.tan(theta)
        x[0], x[-1] = x[1], x[-2]  # endpoints have zero weight anyway
        total = np.trapezoid(w, dx=dtheta)
        mean = np.trapezoid(w * x, dx=dtheta) / total
        var = np.trapezoid(w * (x - mean) ** 2, dx=dtheta) / total
        return float(mean), float(var)


def _build_type4(skew: float, kurt: float) -> _PearsonIV:
    """Pearson IV parameters from moments (Heinrich's formulas)."""
    beta1 = skew * skew
    beta2 = kurt
    denom = 2.0 * beta2 - 3.0 * beta1 - 6.0
    if denom <= 0.0:
        raise ReconstructionError("type IV requires 2*kurt - 3*skew^2 - 6 > 0")
    r = 6.0 * (beta2 - beta1 - 1.0) / denom
    m = (r + 2.0) / 2.0
    disc = 16.0 * (r - 1.0) - beta1 * (r - 2.0) ** 2
    if disc <= 0.0:
        raise ReconstructionError("type IV discriminant non-positive")
    nu = -r * (r - 2.0) * skew / np.sqrt(disc)
    a = np.sqrt(disc) / 4.0  # for unit variance
    lam = a * nu / r  # so that mean = lam - a*nu/r = 0
    return _PearsonIV(m=m, nu=nu, a=a, lam=lam)


@dataclass(frozen=True)
class PearsonDistribution:
    """A member of the Pearson system matched to four moments.

    Construct with :func:`pearson_system`.  The wrapped standardized
    distribution ``base`` is mapped through ``x -> loc + scale * x`` so
    that the resulting mean and standard deviation are exact.
    """

    mean: float
    std: float
    skew: float
    kurt: float
    pearson_type: int
    _base: object
    _loc: float
    _scale: float

    def rvs(self, size: int, random_state=None) -> np.ndarray:
        """Draw ``size`` samples matching the requested moments."""
        rng = check_random_state(random_state)
        if isinstance(self._base, _PearsonIV):
            raw = self._base.rvs(size, random_state=rng)
        elif self._base is None:  # degenerate point mass
            raw = np.zeros(size)
        else:
            raw = self._base.rvs(size=size, random_state=rng)
        return self._loc + self._scale * raw

    def pdf(self, x) -> np.ndarray:
        """Density at *x* (zero-width distributions have no density)."""
        if self._base is None:
            raise ReconstructionError("point-mass distribution has no density")
        xq = (np.atleast_1d(np.asarray(x, dtype=np.float64)) - self._loc) / self._scale
        return self._base.pdf(xq) / abs(self._scale)

    def cdf(self, x) -> np.ndarray:
        """CDF at *x*."""
        xq = np.atleast_1d(np.asarray(x, dtype=np.float64))
        if self._base is None:
            return (xq >= self._loc).astype(np.float64)
        z = (xq - self._loc) / self._scale
        c = self._base.cdf(z)
        if self._scale < 0.0:
            c = 1.0 - c
        return c


def pearson_system(
    mean: float, std: float, skew: float, kurt: float, *, project: bool = True
) -> PearsonDistribution:
    """Construct the Pearson-system distribution with the given moments.

    Parameters
    ----------
    mean, std, skew, kurt:
        Target first four moments (kurt is *not* excess; normal = 3).
    project:
        When True (default), infeasible or non-finite moment vectors are
        first projected to the nearest feasible point instead of raising —
        this is essential when the moments come from an ML model.
    """
    if project:
        mean, std, skew, kurt = nearest_feasible(mean, std, skew, kurt)
    if std < 0.0:
        raise MomentError(f"std must be non-negative, got {std}")
    # Exact-zero guard: only a literally degenerate (point-mass)
    # distribution takes the branch; near-zero std must stay continuous.
    if std == 0.0:  # repro: noqa[DET005]
        return PearsonDistribution(mean, 0.0, skew, kurt, 0, None, mean, 0.0)
    ptype = classify_pearson(skew, kurt)

    builders: dict[int, Callable[[], object]] = {
        0: lambda: sps.norm(),
        1: lambda: _build_type1(skew, kurt),
        2: lambda: _build_type2(kurt),
        3: lambda: _build_type3(skew),
        4: lambda: _build_type4(skew, kurt),
        5: lambda: _build_type5(skew),
        6: lambda: _build_type6(skew, kurt),
        7: lambda: _build_type7(kurt),
    }
    try:
        base = builders[ptype]()
    except ReconstructionError:
        # Geometry edge cases near type boundaries: retreat to the normal
        # distribution rather than failing a whole prediction pipeline.
        base = sps.norm()
        ptype = 0

    mirror = ptype in (3, 5, 6) and skew < 0.0
    if isinstance(base, _PearsonIV):
        base_mean, base_var = base.stats_mv()
    else:
        base_mean, base_var = (float(v) for v in base.stats(moments="mv"))
    base_std = np.sqrt(base_var)
    if not np.isfinite(base_std) or base_std <= 0.0:
        raise ReconstructionError(
            f"type {ptype} base distribution has invalid std {base_std}"
        )
    scale = std / base_std
    if mirror:
        scale = -scale
    loc = mean - scale * base_mean
    return PearsonDistribution(mean, std, skew, kurt, ptype, base, loc, scale)


def pearsrnd(
    mean: float,
    std: float,
    skew: float,
    kurt: float,
    size: int,
    rng=None,
) -> np.ndarray:
    """MATLAB-style one-shot sampler: moments in, random sample out."""
    dist = pearson_system(mean, std, skew, kurt)
    return dist.rvs(size, random_state=rng)
