"""Empirical distribution utilities: ECDF, quantiles, relative time.

The paper's pipelines always operate on *relative time* — runtimes
normalized by their mean (Section III-B2) — so that distribution shapes are
comparable across applications with different absolute runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_sample_array
from ..errors import ValidationError

__all__ = [
    "ECDF",
    "relative_time",
    "quantiles",
    "summary_quantiles",
    "trim_outliers",
]


def relative_time(samples) -> np.ndarray:
    """Normalize runtime samples to mean 1 ("relative time" in the paper).

    Raises :class:`~repro.errors.ValidationError` if the mean is not
    strictly positive, which would make the normalization meaningless.
    """
    x = as_sample_array(samples, min_size=1)
    mean = x.mean()
    if mean <= 0.0:
        raise ValidationError(f"cannot normalize samples with mean {mean:.6g} <= 0")
    return x / mean


def quantiles(samples, q) -> np.ndarray:
    """Linear-interpolation quantiles of a sample (vectorized over *q*)."""
    x = as_sample_array(samples, min_size=1)
    q = np.atleast_1d(np.asarray(q, dtype=np.float64))
    if np.any((q < 0.0) | (q > 1.0)):
        raise ValidationError("quantile levels must lie in [0, 1]")
    return np.quantile(x, q)


def summary_quantiles(samples) -> dict[str, float]:
    """Common tail/center quantiles used in variability reporting."""
    levels = np.array([0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99])
    vals = quantiles(samples, levels)
    names = ["p01", "p05", "p25", "p50", "p75", "p95", "p99"]
    return dict(zip(names, (float(v) for v in vals)))


def trim_outliers(samples, *, lower: float = 0.0, upper: float = 0.999) -> np.ndarray:
    """Drop samples outside the [lower, upper] quantile band.

    Useful for robustifying KDE bandwidth selection against the rare
    daemon-interference spikes that produce extreme right tails.
    """
    x = as_sample_array(samples, min_size=1)
    lo, hi = np.quantile(x, [lower, upper])
    return x[(x >= lo) & (x <= hi)]


@dataclass(frozen=True)
class ECDF:
    """Empirical cumulative distribution function of a sample.

    Stores the sorted sample once; evaluation is a vectorized
    ``searchsorted`` (O(m log n) for m query points).
    """

    sorted_samples: np.ndarray

    @classmethod
    def from_samples(cls, samples) -> "ECDF":
        x = as_sample_array(samples, min_size=1)
        return cls(np.sort(x))

    @property
    def n(self) -> int:
        """Number of underlying samples."""
        return int(self.sorted_samples.size)

    def __call__(self, x) -> np.ndarray:
        """Evaluate ``F(x) = P(X <= x)`` at the query points *x*."""
        xq = np.atleast_1d(np.asarray(x, dtype=np.float64))
        ranks = np.searchsorted(self.sorted_samples, xq, side="right")
        return ranks / self.n

    def inverse(self, q) -> np.ndarray:
        """Empirical quantile function (inverse CDF) at levels *q*."""
        qs = np.atleast_1d(np.asarray(q, dtype=np.float64))
        if np.any((qs < 0.0) | (qs > 1.0)):
            raise ValidationError("quantile levels must lie in [0, 1]")
        idx = np.clip(np.ceil(qs * self.n).astype(np.intp) - 1, 0, self.n - 1)
        return self.sorted_samples[idx]

    def support(self) -> tuple[float, float]:
        """(min, max) of the underlying sample."""
        return float(self.sorted_samples[0]), float(self.sorted_samples[-1])
