"""Lognormal percentile→moment formulas, shared across the library.

Percentile-only telemetry (p50/p95/p99 exports) carries no
distribution-free variance information: recovering moments from a handful
of quantiles *requires* a modeling assumption.  This module is the single
home of the library's explicit **lognormal** assumption — positive
support, right skew, moderate tails — used by two consumers:

* :class:`~repro.serving.fleet.admission.KingmanAdmission`, which
  estimates the service-time Cs² from its measured window's p50/p99
  (the formulas historically lived there);
* :class:`~repro.core.sketch.QuantileSketch`, which recovers model
  features and full moment vectors from percentile-only probes.

Under ``X ~ LogNormal(mu, sigma)`` the quantile at level ``p`` is
``exp(mu + z_p * sigma)`` with ``z_p = Phi^-1(p)``, so two percentiles
pin both parameters::

    sigma = ln(p99/p50) / z99          (z99 = Phi^-1(0.99) ~ 2.3263)
    mu    = ln(p50)
    Cs^2  = exp(sigma^2) - 1

With more than two levels, :func:`fit_lognormal` least-squares the line
``ln(q_p) = mu + sigma * z_p`` through all of them — but keeps the exact
p50/p99 closed form when exactly those two levels are available, so the
sketch path is bit-identical to the admission gate's historical math.
"""

from __future__ import annotations

import math

import numpy as np

from .._validation import as_float_array
from ..errors import ValidationError
from .moments import MomentVector

__all__ = [
    "Z99",
    "sigma_from_percentiles",
    "cs2_from_percentiles",
    "cs2_from_moments",
    "fit_lognormal",
    "lognormal_moments",
    "lognormal_quantile",
    "lognormal_cdf",
]

#: z-score of the 99th percentile of the standard normal, Φ⁻¹(0.99).
#: Hardcoded (scipy.stats.norm.ppf(0.99)) so the admission hot path and
#: the exact two-point fit need no scipy import.
Z99 = 2.3263478740408408

#: Tolerance for matching sketch levels against the canonical 0.5/0.99
#: pair (levels are user-supplied floats; exact ``==`` would be fragile).
_LEVEL_TOL = 1e-9


def sigma_from_percentiles(p50: float, p99: float) -> float:
    """Lognormal shape parameter from the p50/p99 pair.

    ``sigma = ln(p99/p50) / z99`` — the exact closed form when the two
    canonical percentiles are available.
    """
    if not (0.0 < p50 <= p99):
        raise ValidationError(
            f"percentiles must satisfy 0 < p50 <= p99, got p50={p50}, p99={p99}"
        )
    return math.log(p99 / p50) / Z99


def cs2_from_percentiles(p50: float, p99: float) -> float:
    """Cs² from two percentiles under the explicit lognormal assumption.

    Assumes the quantity is log-normal (see the module docstring for why
    the assumption is required and when it is reasonable):
    ``sigma = ln(p99/p50)/z99`` and ``Cs² = exp(sigma²) − 1``.
    """
    sigma_ln = sigma_from_percentiles(p50, p99)
    return math.expm1(sigma_ln * sigma_ln)


def cs2_from_moments(samples) -> float:
    """Textbook Cs² = Var(S)/E[S]² from raw service-time samples."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size < 2:
        raise ValidationError("cs2_from_moments needs at least two samples")
    mean = float(arr.mean())
    if mean <= 0.0:
        raise ValidationError("service times must have a positive mean")
    return float(arr.var() / (mean * mean))


def _z_scores(levels: np.ndarray) -> np.ndarray:
    """Standard-normal quantiles of the given probability levels."""
    from scipy.special import ndtri

    return np.asarray(ndtri(levels), dtype=np.float64)


def fit_lognormal(levels, values) -> tuple[float, float]:
    """Fit ``(mu, sigma)`` of a lognormal to (level, quantile-value) pairs.

    When the level set contains the canonical 0.5/0.99 pair (within
    tolerance), the exact two-point closed form is used — ``mu =
    ln(p50)``, ``sigma = ln(p99/p50)/z99`` — matching
    :func:`cs2_from_percentiles` (and therefore the admission gate)
    bit for bit.  Otherwise the line ``ln(q_p) = mu + sigma * z_p`` is
    least-squares fitted through all levels.

    ``sigma`` is clamped to be non-negative (quantile values are
    validated monotone upstream, but a flat sketch fits sigma = 0).
    """
    lv = as_float_array(levels, name="levels")
    vals = as_float_array(values, name="values")
    lv = np.atleast_1d(lv)
    vals = np.atleast_1d(vals)
    if lv.shape != vals.shape or lv.ndim != 1:
        raise ValidationError(
            f"levels and values must be matching 1-D arrays, got "
            f"{lv.shape} and {vals.shape}"
        )
    if lv.size < 2:
        raise ValidationError("fit_lognormal needs at least two levels")
    if np.any((lv <= 0.0) | (lv >= 1.0)):
        raise ValidationError("levels must lie strictly inside (0, 1)")
    if np.any(vals <= 0.0):
        raise ValidationError("quantile values must be strictly positive")

    i50 = np.flatnonzero(np.abs(lv - 0.5) < _LEVEL_TOL)
    i99 = np.flatnonzero(np.abs(lv - 0.99) < _LEVEL_TOL)
    if i50.size and i99.size:
        p50 = float(vals[i50[0]])
        p99 = float(vals[i99[0]])
        return math.log(p50), sigma_from_percentiles(p50, p99)

    z = _z_scores(lv)
    logv = np.log(vals)
    z_mean = float(z.mean())
    v_mean = float(logv.mean())
    denom = float(((z - z_mean) ** 2).sum())
    if denom <= 0.0:
        raise ValidationError("levels are degenerate: need distinct levels")
    sigma = float(((z - z_mean) * (logv - v_mean)).sum() / denom)
    sigma = max(sigma, 0.0)
    mu = v_mean - sigma * z_mean
    return mu, sigma


def lognormal_moments(mu: float, sigma: float) -> MomentVector:
    """First four moments of ``LogNormal(mu, sigma)``.

    Kurtosis follows the library convention (standardized fourth central
    moment; normal = 3, *not* excess).
    """
    if sigma < 0.0:
        raise ValidationError(f"sigma must be >= 0, got {sigma}")
    s2 = sigma * sigma
    mean = math.exp(mu + s2 / 2.0)
    omega_m1 = math.expm1(s2)  # exp(sigma^2) - 1
    std = mean * math.sqrt(omega_m1)
    skew = (math.exp(s2) + 2.0) * math.sqrt(omega_m1)
    kurt = (
        math.exp(4.0 * s2) + 2.0 * math.exp(3.0 * s2) + 3.0 * math.exp(2.0 * s2) - 3.0
    )
    return MomentVector(mean, std, skew, kurt)


def lognormal_quantile(level, mu: float, sigma: float) -> np.ndarray:
    """Quantile function of ``LogNormal(mu, sigma)`` at *level* (vectorized)."""
    lv = np.atleast_1d(as_float_array(level, name="level"))
    if np.any((lv <= 0.0) | (lv >= 1.0)):
        raise ValidationError("quantile levels must lie strictly inside (0, 1)")
    return np.exp(mu + _z_scores(lv) * sigma)


def lognormal_cdf(x, mu: float, sigma: float) -> np.ndarray:
    """CDF of ``LogNormal(mu, sigma)`` at *x* (vectorized; 0 for x <= 0)."""
    from scipy.special import ndtr

    xq = np.atleast_1d(np.asarray(x, dtype=np.float64))
    out = np.zeros_like(xq)
    pos = xq > 0.0
    if sigma <= 0.0:
        # Degenerate point mass at exp(mu).
        return (xq >= math.exp(mu)).astype(np.float64)
    out[pos] = ndtr((np.log(xq[pos]) - mu) / sigma)
    return out
