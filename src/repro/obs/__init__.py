"""repro.obs — structured observability for the evaluation engine.

One process-wide facade over three primitives:

* **metrics** — counters / gauges / histograms in a
  :class:`~repro.obs.registry.MetricsRegistry`
  (:func:`counter`, :func:`gauge`, :func:`observe`);
* **tracing** — hierarchical, monotonic-clocked spans
  (:func:`span`) buffered as plain-dict events;
* **trace files** — a versioned JSONL export of one run
  (:func:`write_trace` / :func:`read_trace` / :func:`validate_trace`).

Everything is off by default: until :func:`enable` is called, every
helper is a cheap early-return and :func:`span` hands back one shared
no-op context manager, so instrumented hot paths pay no allocation and
record no state.  Enabling observability is bit-neutral — no RNG is
touched — so results (KS checksums included) are identical with obs on
or off, at any worker count.

The full metrics/trace contract — every metric name, its unit and
emitting module, the JSONL schema, and the stability promise — is
documented in ``docs/OBSERVABILITY.md`` and enforced by
``tests/obs/test_contract.py``.

Typical use::

    from repro import obs

    obs.enable()
    grid = representation_model_grid(campaigns, cfg)
    obs.write_trace("results/trace_fig4.jsonl", meta={"experiment": "fig4"})
    print(obs.run_summary()["cache"]["hit_rate"])
"""

from .registry import HistogramSummary, MetricsRegistry
from .summary import run_summary, summarize_records
from .trace_io import (
    TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
    cell_walls,
    read_trace,
    stage_totals,
    trace_records,
    validate_trace,
    write_trace,
)
from .tracing import (
    counter,
    disable,
    enable,
    enabled,
    events,
    gauge,
    get_registry,
    observe,
    reset,
    span,
)

__all__ = [
    "MetricsRegistry",
    "HistogramSummary",
    "enabled",
    "enable",
    "disable",
    "reset",
    "span",
    "counter",
    "gauge",
    "observe",
    "get_registry",
    "events",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "trace_records",
    "write_trace",
    "read_trace",
    "validate_trace",
    "stage_totals",
    "cell_walls",
    "run_summary",
    "summarize_records",
]
