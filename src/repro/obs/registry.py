"""Process-wide metrics registry: counters, gauges, histograms.

The registry is deliberately tiny — three metric kinds, one lock, plain
dict storage — because its job is bookkeeping, not analysis.  Analysis
lives downstream of :meth:`MetricsRegistry.snapshot`, which renders the
whole registry as deterministic, JSON-ready data (names sorted, values
plain Python scalars).

Metric kinds
------------
counter
    Monotonically increasing integer (events, cache hits, rows fitted).
gauge
    Last-write-wins float (utilization, pickle payload size).
histogram
    Streaming summary of observed values: count, total, min, max, plus
    power-of-two bucket counts (bucket ``b`` holds values in
    ``[2**b, 2**(b+1))``), enough for latency distributions without
    storing samples.

Naming contract: ``<area>.<object>.<verb-or-unit>`` with areas
``engine``, ``pool``, ``cache``, ``tree``, ``forest``, ``simbench``.
Every name emitted by the library is documented in
``docs/OBSERVABILITY.md``; a tier-1 test enforces that.
"""

from __future__ import annotations

import math
import threading

__all__ = ["MetricsRegistry", "HistogramSummary"]


class HistogramSummary:
    """Streaming summary of one histogram metric (no samples retained)."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: log2-bucket index -> observation count.
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        v = float(value)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        b = math.frexp(v)[1] - 1 if v > 0.0 else -1074
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """JSON-ready rendering with sorted bucket keys."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "buckets": {str(k): self.buckets[k] for k in sorted(self.buckets)},
        }


class MetricsRegistry:
    """Thread-safe store of named counters, gauges and histograms.

    One shared instance backs the module-level :mod:`repro.obs` facade;
    tests construct private instances to assert in isolation.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, HistogramSummary] = {}

    # -- recording -----------------------------------------------------------

    def counter_add(self, name: str, value: int = 1) -> None:
        """Add *value* (default 1) to counter *name*, creating it at 0."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(value)

    def gauge_set(self, name: str, value: float) -> None:
        """Set gauge *name* to *value* (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def histogram_observe(self, name: str, value: float) -> None:
        """Record one observation into histogram *name*."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = HistogramSummary()
            hist.observe(value)

    # -- reading -------------------------------------------------------------

    def counter_value(self, name: str) -> int:
        """Current value of counter *name* (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> float | None:
        """Current value of gauge *name* (None if never set)."""
        with self._lock:
            return self._gauges.get(name)

    def snapshot(self) -> dict:
        """Deterministic JSON-ready dump of every metric.

        Names are sorted; histogram summaries are rendered via
        :meth:`HistogramSummary.as_dict`.  Two registries that saw the
        same updates produce identical snapshots.
        """
        with self._lock:
            return {
                "counters": {k: self._counters[k] for k in sorted(self._counters)},
                "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
                "histograms": {
                    k: self._histograms[k].as_dict()
                    for k in sorted(self._histograms)
                },
            }

    def reset(self) -> None:
        """Drop every metric (used between experiment runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
