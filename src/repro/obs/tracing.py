"""Hierarchical tracing spans with a zero-overhead disabled mode.

A *span* is a named, timed region of code with key/value attributes and
a parent link, forming a per-thread tree::

    with span("cell", representation="pearsonrnd", model="knn"):
        with span("stage", stage="fit"):
            ...

Spans use :func:`time.perf_counter` (monotonic) and record, on exit, a
plain-dict event into the process-wide event buffer: sequence number
(assigned at span *start*, so workers=1 traces replay program order),
parent sequence number, start offset relative to :func:`enable` time,
duration, process id and thread name.  The buffer is serialized by
:mod:`repro.obs.trace_io`.

Disabled mode (the default) is the hot-path contract: :func:`span`
returns one shared no-op context manager and the metric helpers return
immediately, so instrumented code retains **no** allocations and mutates
no state when observability is off.  ``tests/obs/test_tracing.py``
asserts this.  Instrumentation must also be *bit-neutral*: nothing in
this module touches any RNG, so enabling observability can never change
numerical results.

Metrics recorded in worker processes die with the worker; the metrics
contract therefore only covers parent-process emission points (see
``docs/OBSERVABILITY.md`` for which names are deterministic across
worker counts).
"""

from __future__ import annotations

import os
import threading
import time

from .registry import MetricsRegistry

__all__ = [
    "enabled",
    "enable",
    "disable",
    "reset",
    "span",
    "counter",
    "gauge",
    "observe",
    "get_registry",
    "events",
]


class _ObsState:
    """Process-wide observability state (one instance, module-private)."""

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricsRegistry()
        self.events: list[dict] = []
        self.lock = threading.Lock()
        self.seq = 0
        self.t0 = time.perf_counter()
        self.local = threading.local()

    def next_seq(self) -> int:
        with self.lock:
            self.seq += 1
            return self.seq

    def stack(self) -> list:
        stk = getattr(self.local, "stack", None)
        if stk is None:
            stk = self.local.stack = []
        return stk


_STATE = _ObsState()


class _NoopSpan:
    """Shared do-nothing context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NOOP = _NoopSpan()


class _Span:
    """A live span; records its event into the buffer on exit."""

    __slots__ = ("name", "attrs", "seq", "parent", "t_start")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.seq = 0
        self.parent = 0
        self.t_start = 0.0

    def __enter__(self) -> "_Span":
        st = _STATE
        stack = st.stack()
        self.parent = stack[-1].seq if stack else 0
        self.seq = st.next_seq()
        stack.append(self)
        self.t_start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        t_end = time.perf_counter()
        st = _STATE
        stack = st.stack()
        if stack and stack[-1] is self:
            stack.pop()
        event = {
            "type": "span",
            "name": self.name,
            "seq": self.seq,
            "parent": self.parent,
            "t_start_s": self.t_start - st.t0,
            "dur_s": t_end - self.t_start,
            "pid": os.getpid(),
            "thread": threading.current_thread().name,
        }
        if self.attrs:
            event["attrs"] = self.attrs
        with st.lock:
            st.events.append(event)


def enabled() -> bool:
    """Whether observability is currently recording."""
    return _STATE.enabled


def enable(*, fresh: bool = True) -> None:
    """Turn recording on.

    With ``fresh`` (the default) the metric registry, event buffer and
    trace clock are reset first, so one :func:`enable` call corresponds
    to one trace file.
    """
    if fresh:
        reset()
    _STATE.enabled = True


def disable() -> None:
    """Turn recording off (buffered events and metrics are kept)."""
    _STATE.enabled = False


def reset() -> None:
    """Clear all metrics and buffered events and restart the trace clock."""
    st = _STATE
    st.registry.reset()
    with st.lock:
        st.events.clear()
        st.seq = 0
    st.t0 = time.perf_counter()


def span(name: str, **attrs):
    """Context manager timing a named region; no-op while disabled.

    Attributes must be JSON-serializable scalars (strings, numbers,
    booleans); they are written verbatim into the trace event.
    """
    if not _STATE.enabled:
        return _NOOP
    return _Span(name, attrs)


def counter(name: str, value: int = 1) -> None:
    """Increment a registry counter; no-op while disabled."""
    if _STATE.enabled:
        _STATE.registry.counter_add(name, value)


def gauge(name: str, value: float) -> None:
    """Set a registry gauge; no-op while disabled."""
    if _STATE.enabled:
        _STATE.registry.gauge_set(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation; no-op while disabled."""
    if _STATE.enabled:
        _STATE.registry.histogram_observe(name, value)


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry (live even while disabled)."""
    return _STATE.registry


def events() -> list[dict]:
    """A snapshot copy of the buffered span events, in completion order."""
    with _STATE.lock:
        return list(_STATE.events)
