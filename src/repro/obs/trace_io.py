"""Versioned JSONL serialization of one observability run.

A trace file is one JSON object per line, written in a deterministic
order so that two runs with identical control flow differ only in
timing values:

1. exactly one ``meta`` record (first line) carrying the schema name,
   schema version and caller-supplied run metadata;
2. every ``counter``, then ``gauge``, then ``histogram`` record, each
   group sorted by metric name;
3. every ``span`` record, sorted by ``seq`` (span-start program order).

All objects are serialized with sorted keys.  The schema is versioned
(:data:`TRACE_SCHEMA_VERSION`); the stability promise and the full field
reference live in ``docs/OBSERVABILITY.md``.

:func:`validate_trace` is the same checker the tests use: it returns a
list of human-readable problems (empty means schema-valid), so tools can
reject foreign or torn files without guessing.
"""

from __future__ import annotations

import json
from pathlib import Path

from . import tracing

__all__ = [
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "trace_records",
    "write_trace",
    "read_trace",
    "validate_trace",
    "stage_totals",
    "cell_walls",
]

#: Schema identifier written into (and required of) every trace file.
TRACE_SCHEMA = "repro.obs.trace"

#: Current trace schema version; bump on any breaking field change.
TRACE_SCHEMA_VERSION = 1

#: Required fields (name -> type) per record type.
_REQUIRED: dict[str, dict[str, type]] = {
    "meta": {"schema": str, "version": int},
    "counter": {"name": str, "value": int},
    "gauge": {"name": str, "value": (int, float)},
    "histogram": {
        "name": str,
        "count": int,
        "total": (int, float),
        "min": (int, float),
        "max": (int, float),
        "mean": (int, float),
        "buckets": dict,
    },
    "span": {
        "name": str,
        "seq": int,
        "parent": int,
        "t_start_s": (int, float),
        "dur_s": (int, float),
        "pid": int,
        "thread": str,
    },
}


def trace_records(*, meta: dict | None = None) -> list[dict]:
    """The current run as an ordered list of schema records.

    Reads the process-wide registry snapshot and event buffer; *meta*
    entries are merged into the leading ``meta`` record.
    """
    head: dict = {"type": "meta", "schema": TRACE_SCHEMA, "version": TRACE_SCHEMA_VERSION}
    if meta:
        for key, value in meta.items():
            head.setdefault(key, value)
    records = [head]
    snap = tracing.get_registry().snapshot()
    for name, value in snap["counters"].items():
        records.append({"type": "counter", "name": name, "value": value})
    for name, value in snap["gauges"].items():
        records.append({"type": "gauge", "name": name, "value": value})
    for name, summary in snap["histograms"].items():
        records.append({"type": "histogram", "name": name, **summary})
    records.extend(sorted(tracing.events(), key=lambda e: e["seq"]))
    return records


def write_trace(path, *, meta: dict | None = None) -> Path:
    """Write the current run's trace to *path* (JSONL) and return it."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        for record in trace_records(meta=meta):
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return out


def read_trace(path) -> list[dict]:
    """Parse a JSONL trace file into its record list (no validation)."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def validate_trace(records: list[dict]) -> list[str]:
    """Schema-check parsed trace records; return problems (empty = valid)."""
    problems: list[str] = []
    if not records:
        return ["empty trace"]
    head = records[0]
    if head.get("type") != "meta":
        problems.append("first record must have type 'meta'")
    elif head.get("schema") != TRACE_SCHEMA:
        problems.append(f"unknown schema {head.get('schema')!r}")
    elif head.get("version") != TRACE_SCHEMA_VERSION:
        problems.append(f"unsupported trace version {head.get('version')!r}")
    seen_seq: set[int] = set()
    for i, record in enumerate(records):
        rtype = record.get("type")
        required = _REQUIRED.get(rtype)  # type: ignore[arg-type]
        if required is None:
            problems.append(f"record {i}: unknown type {rtype!r}")
            continue
        if rtype == "meta" and i > 0:
            problems.append(f"record {i}: duplicate meta record")
        for field, ftype in required.items():
            if field not in record:
                problems.append(f"record {i} ({rtype}): missing field {field!r}")
            elif not isinstance(record[field], ftype) or isinstance(record[field], bool):
                problems.append(
                    f"record {i} ({rtype}): field {field!r} has type "
                    f"{type(record[field]).__name__}"
                )
        if rtype == "span" and isinstance(record.get("seq"), int):
            if record["seq"] in seen_seq:
                problems.append(f"record {i} (span): duplicate seq {record['seq']}")
            seen_seq.add(record["seq"])
    return problems


def stage_totals(records: list[dict]) -> dict[str, float]:
    """Per-stage wall-time totals from ``stage`` spans, in first-seen order.

    These reconcile with the
    :class:`~repro.experiments.reporting.StageTimer` breakdown because
    the timer emits exactly one ``stage`` span per timed block.
    """
    totals: dict[str, float] = {}
    for record in records:
        if record.get("type") == "span" and record.get("name") == "stage":
            stage = str(record.get("attrs", {}).get("stage", "?"))
            totals[stage] = totals.get(stage, 0.0) + float(record["dur_s"])
    return totals


def cell_walls(records: list[dict]) -> dict[str, float]:
    """Wall time per grid cell from ``cell`` spans.

    Keys are ``"<representation>+<model>"``; a repeated cell accumulates
    (the grid runners emit each cell once).
    """
    walls: dict[str, float] = {}
    for record in records:
        if record.get("type") == "span" and record.get("name") == "cell":
            attrs = record.get("attrs", {})
            key = f"{attrs.get('representation', '?')}+{attrs.get('model', '?')}"
            walls[key] = walls.get(key, 0.0) + float(record["dur_s"])
    return walls
