"""Derived summaries of one observability run.

Raw counters answer "how many"; the perf record and the trace report
both want ratios — cache hit rate, encoding-dedup rate, worker
utilization — next to the per-stage wall-time totals.  This module
derives them in one place so ``tools/bench_report.py`` and
``tools/trace_report.py`` embed the same numbers (schema documented in
``docs/OBSERVABILITY.md`` and ``EXPERIMENTS.md``).
"""

from __future__ import annotations

from . import tracing
from .trace_io import stage_totals

__all__ = ["run_summary", "summarize_records"]


def _rate(hits: int, misses: int) -> float | None:
    total = hits + misses
    return hits / total if total else None


def summarize_records(records: list[dict]) -> dict:
    """:func:`run_summary` over parsed trace records instead of live state."""
    counters = {
        r["name"]: r["value"] for r in records if r.get("type") == "counter"
    }
    gauges = {r["name"]: r["value"] for r in records if r.get("type") == "gauge"}
    return _summarize(counters, gauges, stage_totals(records))


def run_summary() -> dict:
    """Summary of the live process-wide run (registry + event buffer).

    Keys: ``stages_s`` (per-stage totals from ``stage`` spans),
    ``cache`` (hit/miss counts and ``hit_rate``), ``engine``
    (fold counts and dedup rates) and ``pool`` (utilization and payload
    gauges).  Rates are ``None`` when the corresponding path never ran.
    """
    from .trace_io import trace_records

    return summarize_records(trace_records())


def _summarize(counters: dict, gauges: dict, stages: dict[str, float]) -> dict:
    c = counters.get
    cache_hits = c("cache.memory.hits", 0) + c("cache.disk.hits", 0)
    return {
        "stages_s": stages,
        "cache": {
            "memory_hits": c("cache.memory.hits", 0),
            "disk_hits": c("cache.disk.hits", 0),
            "misses": c("cache.misses", 0),
            "evictions": c("cache.evictions", 0),
            "corruptions": c("cache.corruptions", 0),
            "load_bytes": c("cache.load_bytes", 0),
            "store_bytes": c("cache.store_bytes", 0),
            "hit_rate": _rate(cache_hits, c("cache.misses", 0)),
        },
        "engine": {
            "folds_fitted": c("engine.folds.fitted", 0),
            "ks_scored": c("engine.ks.scored", 0),
            "fold_vector_hit_rate": _rate(
                c("engine.fold_vectors.hits", 0), c("engine.fold_vectors.misses", 0)
            ),
            "target_hit_rate": _rate(
                c("engine.targets.hits", 0), c("engine.targets.misses", 0)
            ),
            "scaled_fold_hit_rate": _rate(
                c("engine.scaled_folds.hits", 0), c("engine.scaled_folds.misses", 0)
            ),
        },
        "pool": {
            "map_calls": c("pool.map.calls", 0),
            "items": c("pool.map.items", 0),
            "chunks": c("pool.map.chunks", 0),
            "serial_inline": c("pool.map.serial_inline", 0),
            "reuse": c("pool.reuse", 0),
            "retries": c("pool.map.retries", 0),
            "shm_bytes_mapped": gauges.get("pool.shm_bytes_mapped"),
            "shm_bytes_saved": c("pool.shm_bytes_saved", 0),
            "worker_utilization": gauges.get("pool.worker_utilization"),
            "fn_pickle_bytes": gauges.get("pool.fn_pickle_bytes"),
            "chunk0_pickle_bytes": gauges.get("pool.chunk0_pickle_bytes"),
        },
    }
