"""Per-line suppression comments: ``# repro: noqa[RULE-ID]``.

A finding is suppressed when the physical line it is anchored to ends
with a marker naming its rule id (several ids may be listed, separated
by commas).  The marker is deliberately namespaced under ``repro:`` so
it can never collide with flake8/ruff ``# noqa`` handling, and
deliberately *requires* explicit rule ids — there is no blanket
``noqa`` that silences every rule, because a suppression should record
exactly which vetted false positive it covers.
"""

from __future__ import annotations

import re

__all__ = ["parse_suppressions", "SUPPRESSION_RE"]

#: Matches ``# repro: noqa[DET005]`` and ``# repro: noqa[DET005, OBS001]``.
SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*noqa\[([A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)\]"
)


def parse_suppressions(text: str) -> dict[int, frozenset[str]]:
    """Map 1-based line number -> rule ids suppressed on that line."""
    out: dict[int, frozenset[str]] = {}
    for i, line in enumerate(text.splitlines(), start=1):
        if "repro:" not in line:
            continue
        match = SUPPRESSION_RE.search(line)
        if match:
            ids = frozenset(part.strip() for part in match.group(1).split(","))
            out[i] = ids
    return out
