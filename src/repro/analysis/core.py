"""Rule model of the static-analysis framework.

Three pieces:

* :class:`Finding` — one diagnostic, anchored to ``path:line:col`` and
  carrying its rule id, so reporters and the suppression matcher never
  need the rule object itself;
* :class:`Rule` — the base class every check subclasses.  A rule sees
  each parsed source file once (:meth:`Rule.check`) and may emit
  project-wide findings after the walk (:meth:`Rule.finalize`), which is
  how cross-file invariants (e.g. *documented-but-dead* metric names)
  are expressed;
* the **registry** — rules self-register at import time via
  :func:`register`; :func:`all_rules` hands the runner one fresh
  instance per rule so accumulated state never leaks between runs.

Rules are scoped by :class:`~repro.analysis.walker.SourceFile.scope`
(library / tests / tools / scripts), not by hard-coded paths, so the
same rule objects run unchanged over the real tree and over the
bad-snippet fixtures in ``tests/analysis/fixtures``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Iterator, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .walker import Project, SourceFile

__all__ = ["Finding", "Rule", "register", "all_rules", "rule_catalog"]


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a rule.

    ``path`` is root-relative POSIX form; ``line``/``col`` are 1- and
    0-based respectively (matching CPython's AST).  ``suppressed`` is
    stamped by the runner when the finding's line carries a matching
    ``# repro: noqa[RULE-ID]`` comment — suppressed findings are
    reported but do not fail the run.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False

    def format(self) -> str:
        """``path:line:col RULE-ID message`` (human reporter line)."""
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col} {self.rule_id} {self.message}{mark}"

    def as_suppressed(self) -> "Finding":
        """Copy of this finding with the suppressed flag set."""
        return replace(self, suppressed=True)


class Rule:
    """Base class for one static check.

    Subclasses set the class attributes and override :meth:`check`
    (per-file) and/or :meth:`finalize` (after every file was checked).
    The runner creates a fresh instance per run, so instance attributes
    are the place for cross-file accumulation.
    """

    #: Stable identifier, e.g. ``"DET001"`` — used in suppression
    #: comments, ``--select``/``--ignore`` and reporters.
    rule_id: str = ""
    #: Short slug, e.g. ``"global-np-random"``.
    name: str = ""
    #: One-line rationale shown by ``--list-rules`` and the docs.
    rationale: str = ""

    def setup(self, project: "Project") -> None:
        """Hook called once before any file is checked."""

    def applies_to(self, source: "SourceFile") -> bool:
        """Whether :meth:`check` should see *source* (default: yes)."""
        return True

    def check(self, source: "SourceFile") -> Iterable[Finding]:
        """Yield findings for one parsed source file."""
        return ()

    def finalize(self, project: "Project") -> Iterable[Finding]:
        """Yield project-wide findings after the per-file walk."""
        return ()

    def finding(self, source: "SourceFile", node, message: str) -> Finding:
        """Finding anchored at an AST *node* of *source*."""
        return Finding(
            rule_id=self.rule_id,
            path=source.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


#: rule_id -> rule class, in registration order.
_REGISTRY: dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *cls* to the global rule registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules(
    select: Iterable[str] | None = None, ignore: Iterable[str] | None = None
) -> list[Rule]:
    """Fresh instances of every registered rule, optionally filtered.

    ``select`` keeps only the listed ids; ``ignore`` drops the listed
    ids.  Unknown ids raise ``ValueError`` so typos fail loudly.
    """
    known = set(_REGISTRY)
    for wanted in (select, ignore):
        unknown = set(wanted or ()) - known
        if unknown:
            raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
    selected = set(select) if select else known
    dropped = set(ignore or ())
    return [cls() for rid, cls in _REGISTRY.items() if rid in selected - dropped]


def rule_catalog() -> Iterator[tuple[str, str, str]]:
    """``(rule_id, name, rationale)`` rows in registration order."""
    for rid, cls in _REGISTRY.items():
        yield rid, cls.name, cls.rationale
