"""Content-hash AST cache for the analyzer.

Parsing ~190 files dominates a clean analyzer run, and both the CLI and
``tests/analysis/test_repo_clean.py`` re-walk the same unchanged tree
repeatedly.  Entries are keyed exactly like ``CampaignCache`` keys its
artifacts: a sha256 fingerprint of the *content* (file bytes) plus the
interpreter version and a cache schema version — never paths or mtimes,
so a rebuilt checkout with identical bytes still hits.

Two tiers:

* an in-process memo (dict), which makes repeated :func:`run_analysis`
  calls within one test session nearly free and — critically — returns
  the *same* tree objects, letting the semantics memo reuse its graphs;
* a best-effort on-disk tier under ``<root>/.repro_cache/analysis/``
  (gitignored), pickling ``(tree, suppressions, parse_error)`` so a
  fresh CLI process skips parsing unchanged files.

Hits and misses are reported through the ``analysis.cache.hits`` /
``analysis.cache.misses`` obs counters (see docs/OBSERVABILITY.md).
The env knob ``REPRO_ANALYSIS_CACHE`` disables the cache entirely when
set to ``0`` or points the disk tier somewhere else when set to a path.
"""

from __future__ import annotations

import ast
import hashlib
import os
import pickle
import sys
from pathlib import Path
from typing import Optional

from .. import obs

__all__ = ["AstCache", "content_hash"]

#: Bump when the cached payload shape or parent annotation changes.
CACHE_VERSION = 1

_ENV_KNOB = "REPRO_ANALYSIS_CACHE"

# (tree or None, suppressions, parse_error or None)
_Entry = tuple[Optional[ast.Module], dict[int, frozenset[str]], Optional[str]]


def content_hash(text: str) -> str:
    """Stable fingerprint of one file's content."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _cache_key(digest: str) -> str:
    tag = f"{digest}:py{sys.version_info[0]}.{sys.version_info[1]}:v{CACHE_VERSION}"
    return hashlib.sha256(tag.encode("ascii")).hexdigest()


#: Process-wide memo shared by every AstCache instance, so repeated
#: run_analysis() calls in one test session parse each file once and
#: share tree objects (which the semantics memo keys on).
_GLOBAL_MEMO: dict[str, _Entry] = {}


class AstCache:
    """Two-tier parse cache; all disk failures degrade to a miss."""

    def __init__(self, root: Path, enabled: bool = True) -> None:
        knob = os.environ.get(_ENV_KNOB, "")
        if knob == "0":
            enabled = False
        self.enabled = enabled
        if knob and knob != "0":
            self.disk_dir: Optional[Path] = Path(knob)
        else:
            self.disk_dir = root / ".repro_cache" / "analysis"
        self.hits = 0
        self.misses = 0
        self._memo = _GLOBAL_MEMO

    def _disk_path(self, key: str) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return self.disk_dir / key[:2] / f"{key}.pkl"

    def get(self, digest: str) -> Optional[_Entry]:
        """Cached parse for a content digest, or ``None`` on miss."""
        if not self.enabled:
            return None
        key = _cache_key(digest)
        entry = self._memo.get(key)
        if entry is not None:
            self.hits += 1
            obs.counter("analysis.cache.hits")
            return entry
        path = self._disk_path(key)
        if path is not None:
            try:
                with open(path, "rb") as fh:
                    entry = pickle.load(fh)
            except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
                entry = None
        if entry is not None:
            self._memo[key] = entry
            self.hits += 1
            obs.counter("analysis.cache.hits")
            return entry
        self.misses += 1
        obs.counter("analysis.cache.misses")
        return None

    def put(self, digest: str, entry: _Entry) -> None:
        """Store a parse result in both tiers (disk writes best-effort)."""
        if not self.enabled:
            return
        key = _cache_key(digest)
        self._memo[key] = entry
        path = self._disk_path(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            with open(tmp, "wb") as fh:
                pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            pass
