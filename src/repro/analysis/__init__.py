"""repro.analysis — AST-based invariant linter for this repository.

The reproduction's headline guarantee — a bit-identical KS checksum
(31.002131067134854) across serial, pooled and shared-memory execution
at any worker count — rests on codebase-wide conventions that no
general-purpose linter checks: all randomness derives from
``seed_for``/``default_rng`` streams, every emitted metric/span name is
documented in ``docs/OBSERVABILITY.md``, shared-memory segments always
unlink, and pool-dispatched callables actually pickle.  This package
machine-checks those invariants.

Layout:

* :mod:`~repro.analysis.walker` — source discovery, parsing, scope
  classification;
* :mod:`~repro.analysis.core` — :class:`Finding`, :class:`Rule`, the
  registry;
* :mod:`~repro.analysis.suppressions` — ``# repro: noqa[RULE-ID]``;
* rule packs: :mod:`~repro.analysis.determinism` (``DET*``),
  :mod:`~repro.analysis.concurrency` (``CONC*``),
  :mod:`~repro.analysis.async_rules` (``ASYNC*``),
  :mod:`~repro.analysis.obs_contract` (``OBS*``),
  :mod:`~repro.analysis.docstrings` (``DOC*``);
* semantics layer: :mod:`~repro.analysis.symbols` (cross-module name
  resolution), :mod:`~repro.analysis.callgraph` (approximate call
  graph), reached from rules via ``project.semantics``;
* :mod:`~repro.analysis.cache` — content-hash AST cache behind the
  walker (``REPRO_ANALYSIS_CACHE`` to disable/redirect);
* :mod:`~repro.analysis.runner` / :mod:`~repro.analysis.reporters` /
  :mod:`~repro.analysis.cli` — driver, human/JSON/GitHub output,
  ``python -m repro.analysis``.

The full rule catalog, rationale and suppression syntax are documented
in ``docs/STATIC_ANALYSIS.md``; ``tests/analysis/test_repo_clean.py``
runs the whole rule set over the repository as part of tier-1.
"""

from .callgraph import CallGraph, CallSite, FunctionNode
from .core import Finding, Rule, all_rules, register, rule_catalog
from .reporters import (
    REPORT_SCHEMA,
    REPORT_VERSION,
    render_github,
    render_human,
    render_json,
    report_from_payload,
)
from .runner import AnalysisReport, repo_root, run_analysis
from .semantics import Semantics
from .symbols import SymbolGraph, SymbolInfo, module_path
from .walker import Project, Scope, SourceFile, build_project, parse_source

# Importing the packs populates the rule registry.
from . import async_rules, concurrency, determinism, docstrings, obs_contract  # noqa: F401

__all__ = [
    "Finding",
    "Rule",
    "register",
    "all_rules",
    "rule_catalog",
    "AnalysisReport",
    "run_analysis",
    "repo_root",
    "Project",
    "Scope",
    "SourceFile",
    "build_project",
    "parse_source",
    "render_human",
    "render_json",
    "render_github",
    "report_from_payload",
    "REPORT_SCHEMA",
    "REPORT_VERSION",
    "Semantics",
    "SymbolGraph",
    "SymbolInfo",
    "module_path",
    "CallGraph",
    "CallSite",
    "FunctionNode",
]
