"""Source discovery and parsing for the analysis run.

:func:`build_project` walks the requested roots, parses every ``*.py``
file once into an AST (annotating parent links, which several rules
need to reason about context), extracts the per-line suppression table,
and classifies each file into a :class:`Scope`:

* ``LIBRARY`` — shipped code (``src/**`` in this repo; also any file
  whose top-level directory is none of the known auxiliary trees, which
  is what makes the fixture corpus under ``tests/analysis/fixtures``
  behave like library code when analyzed with its own root);
* ``TESTS`` / ``TOOLS`` / ``SCRIPTS`` — ``tests/``, ``tools/`` and
  ``benchmarks/``/``examples/`` respectively.

Determinism rules only police ``LIBRARY`` files (tests may compare
floats exactly on purpose — that *is* the bit-identical assertion),
while concurrency rules run everywhere a pool can be misused.

Directories named ``fixtures`` are excluded from the walk by default:
they hold intentionally-bad snippets that the framework's own tests
feed to the rules directly.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from .cache import AstCache, content_hash
from .suppressions import parse_suppressions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .semantics import Semantics

__all__ = ["Scope", "SourceFile", "Project", "build_project", "DEFAULT_ROOT_NAMES"]

#: Root subdirectories scanned when no explicit paths are given.
DEFAULT_ROOT_NAMES = ("src", "tools", "tests")

#: Directory names never descended into.
_EXCLUDED_DIRS = {"__pycache__", "fixtures", ".git", ".venv", "node_modules", ".repro_cache"}


class Scope(enum.Enum):
    """Coarse classification of a source file by its top-level tree."""

    LIBRARY = "library"
    TESTS = "tests"
    TOOLS = "tools"
    SCRIPTS = "scripts"


@dataclass
class SourceFile:
    """One parsed Python file plus everything rules need to check it."""

    path: Path
    relpath: str
    scope: Scope
    text: str
    tree: ast.Module | None
    suppressions: dict[int, frozenset[str]]
    #: Syntax error message when ``tree`` is None.
    parse_error: str | None = None
    #: sha256 of the file content — the AST-cache and semantics key.
    content_hash: str = ""

    def parent(self, node: ast.AST) -> ast.AST | None:
        """Parent AST node (annotated at parse time), or ``None``."""
        return getattr(node, "_repro_parent", None)


@dataclass
class Project:
    """The full corpus of one analysis run."""

    root: Path
    sources: list[SourceFile] = field(default_factory=list)
    #: True when explicit paths restricted the walk. Cross-file
    #: both-direction rules (dead contract entries, stale allowlists)
    #: are only meaningful over a complete corpus and skip partial runs.
    partial: bool = False
    #: Parse-cache accounting for this walk (reported by the runner).
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def semantics(self) -> "Semantics":
        """Interprocedural symbol/call graphs, built lazily on first use.

        Memoized per corpus content in :mod:`repro.analysis.semantics`,
        so repeated runs over an unchanged tree build the graphs once.
        """
        from .semantics import semantics_for

        return semantics_for(self)

    def read_doc(self, relpath: str) -> str | None:
        """Text of a non-Python project file (e.g. the obs contract)."""
        path = self.root / relpath
        try:
            return path.read_text()
        except OSError:
            return None


def _classify(relpath: str) -> Scope:
    top = relpath.split("/", 1)[0]
    if top == "tests":
        return Scope.TESTS
    if top == "tools":
        return Scope.TOOLS
    if top in ("benchmarks", "examples"):
        return Scope.SCRIPTS
    return Scope.LIBRARY


def _annotate_parents(tree: ast.Module) -> None:
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._repro_parent = parent  # type: ignore[attr-defined]


def parse_source(path: Path, root: Path, cache: AstCache | None = None) -> SourceFile:
    """Parse one file into a :class:`SourceFile` (never raises on syntax).

    With a *cache*, an unchanged file (same content hash) reuses the
    previously parsed tree and suppression table instead of re-parsing.
    """
    text = path.read_text()
    digest = content_hash(text)
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    entry = cache.get(digest) if cache is not None else None
    if entry is not None:
        tree, suppressions, error = entry
    else:
        error = None
        try:
            tree = ast.parse(text, filename=str(path))
            _annotate_parents(tree)
        except SyntaxError as exc:
            tree, error = None, f"{exc.msg} (line {exc.lineno})"
        suppressions = parse_suppressions(text)
        if cache is not None:
            cache.put(digest, (tree, suppressions, error))
    return SourceFile(
        path=path,
        relpath=rel,
        scope=_classify(rel),
        text=text,
        tree=tree,
        suppressions=suppressions,
        parse_error=error,
        content_hash=digest,
    )


def _iter_py_files(paths: list[Path]):
    for base in paths:
        if base.is_file():
            if base.suffix == ".py":
                yield base
            continue
        for path in sorted(base.rglob("*.py")):
            # Exclusions apply below the walk base only, so a corpus
            # that itself lives in a `fixtures` directory still scans.
            if not _EXCLUDED_DIRS.intersection(path.relative_to(base).parts):
                yield path


def build_project(
    root: Path, paths: list[Path] | None = None, use_cache: bool = True
) -> Project:
    """Walk *paths* (default: the standard roots under *root*) and parse.

    When none of the standard root names exist under *root* — e.g. the
    fixture corpus — *root* itself is walked, so
    ``python -m repro.analysis --root <dir>`` analyzes any directory.

    *use_cache* enables the content-hash AST cache (overridable via the
    ``REPRO_ANALYSIS_CACHE`` env knob, see :mod:`repro.analysis.cache`).
    """
    root = root.resolve()
    partial = paths is not None
    if paths is None:
        paths = [root / name for name in DEFAULT_ROOT_NAMES if (root / name).is_dir()]
        if not paths:
            paths = [root]
    seen: set[Path] = set()
    project = Project(root=root, partial=partial)
    cache = AstCache(root, enabled=use_cache)
    for path in _iter_py_files(paths):
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        project.sources.append(parse_source(path, root, cache))
    project.cache_hits, project.cache_misses = cache.hits, cache.misses
    return project
