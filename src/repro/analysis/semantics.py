"""The ``Project.semantics`` facade: symbol graph + call graph, memoized.

Building the graphs costs one AST walk over every parsed file, so the
result is memoized per *content fingerprint* of the walked corpus: two
projects over the same set of ``(relpath, content_hash)`` pairs share
one ``Semantics`` instance within a process.  This is what lets
``tests/analysis/test_repo_clean.py`` call :func:`run_analysis` several
times while the graphs are built once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .callgraph import CallGraph
from .symbols import SymbolGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .walker import Project

__all__ = ["Semantics", "semantics_for"]


@dataclass
class Semantics:
    """Interprocedural view of a walked project."""

    symbols: SymbolGraph
    callgraph: CallGraph


_MEMO: dict[tuple[tuple[str, str, int], ...], Semantics] = {}


def corpus_key(project: "Project") -> tuple[tuple[str, str, int], ...]:
    """Content + tree-identity fingerprint of every parsed file.

    The tree id matters because the call graph indexes AST nodes by
    ``id()``: a memo hit is only valid when the project literally shares
    the cached tree objects (which the in-process AST cache arranges).
    A reparse of identical content gets a fresh — equivalent — build.
    The memoized graphs keep the trees alive, so ids cannot be reused.
    """
    return tuple(
        sorted(
            (s.relpath, s.content_hash, id(s.tree))
            for s in project.sources
            if s.tree is not None
        )
    )


def semantics_for(project: "Project") -> Semantics:
    """Build (or reuse) the semantics layer for a project."""
    key = corpus_key(project)
    hit = _MEMO.get(key)
    if hit is not None:
        return hit
    symbols = SymbolGraph(project)
    built = Semantics(symbols=symbols, callgraph=CallGraph(project, symbols))
    _MEMO[key] = built
    return built
