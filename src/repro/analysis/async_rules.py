"""ASYNC rule pack — event-loop safety for the serving fleet.

The fleet router, shard protocol, and server all run on one asyncio
loop; a single blocking call anywhere on that loop stalls *every*
in-flight request, and an unawaited coroutine silently does nothing.
These rules use the interprocedural semantics layer
(:attr:`Project.semantics`) so a blocking primitive two calls deep —
e.g. ``registry.resolve`` reading a tag file via
``ArtifactStore.resolve`` — is attributed to the ``async def`` frame
that reaches it.

False-negative contract (see docs/STATIC_ANALYSIS.md): resolution only
follows calls provable inside the walked tree, so anything reached
through dynamic dispatch, ``getattr``, third-party code, or deeper than
the traversal cap simply produces no finding.  The rules never guess.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from .astutil import call_chain, enclosing_function
from .callgraph import own_body
from .core import Finding, Rule, register
from .symbols import SymbolInfo
from .walker import Project, Scope, SourceFile

__all__ = [
    "UnawaitedCoroutineRule",
    "BlockingInAsyncRule",
    "SyncLockAcrossAwaitRule",
    "DroppedTaskRule",
    "CoroutineAsCallableRule",
]

#: Exact dotted call chains that block the calling thread.
_BLOCKING_CHAINS = {
    "time.sleep",
    "socket.create_connection",
    "os.system",
    "os.popen",
}
_SUBPROCESS_HEADS = {"subprocess"}
_IO_TAILS = {"read_text", "read_bytes", "write_text", "write_bytes"}
_HEAVY_NP_SUBMODULES = {"linalg", "fft"}
_HEAVY_NP_ATTRS = {"einsum", "dot", "matmul", "tensordot", "vdot", "inner", "kron"}
_LOCK_FACTORIES = {"Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition"}

#: Interprocedural traversal depth cap — beyond this the rules stay
#: silent rather than time out (part of the false-negative contract).
_MAX_DEPTH = 8


def _blocking_reason(call: ast.Call) -> Optional[str]:
    """Why this call blocks the calling thread, or ``None``."""
    chain = call_chain(call)
    if chain is not None:
        if chain in _BLOCKING_CHAINS:
            return f"`{chain}()`"
        parts = chain.split(".")
        if parts[0] in _SUBPROCESS_HEADS and len(parts) > 1:
            return f"`{chain}()`"
        if parts[0] in ("np", "numpy") and len(parts) > 1:
            if parts[1] in _HEAVY_NP_SUBMODULES or parts[-1] in _HEAVY_NP_ATTRS:
                return f"heavy numpy `{chain}()`"
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "`open()`"
    if isinstance(func, ast.Attribute):
        if func.attr in _IO_TAILS:
            return f"file I/O `.{func.attr}()`"
        if func.attr.startswith("predict"):
            return f"model prediction `.{func.attr}()`"
    return None


def _contains_await(stmts: Iterable[ast.AST]) -> bool:
    """Whether any statement awaits, ignoring nested function bodies."""
    stack = list(stmts)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Await):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


class _SemanticsRule(Rule):
    """Base for rules that consult ``project.semantics``."""

    def setup(self, project: Project) -> None:
        """Keep the project; the semantics layer is built lazily."""
        self._project = project

    def _semantics(self):
        return self._project.semantics


@register
class UnawaitedCoroutineRule(_SemanticsRule):
    """A coroutine call whose result is discarded never runs."""

    rule_id = "ASYNC001"
    name = "unawaited-coroutine"
    rationale = (
        "calling an async def without awaiting it creates a coroutine object "
        "and throws it away — the body never executes and the loop only "
        "prints a RuntimeWarning long after the silent no-op corrupted state"
    )

    def applies_to(self, source: SourceFile) -> bool:
        """Everywhere — a dropped coroutine is a bug in any tree."""
        return source.tree is not None

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Flag statement-level calls that resolve to ``async def``s."""
        sem = self._semantics()
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            fn = sem.callgraph.function_at(node)
            if fn is None:
                continue
            for site in fn.calls:
                if site.kind not in ("direct", "method") or not site.callee.is_async:
                    continue
                if isinstance(source.parent(site.call), ast.Expr):
                    yield self.finding(
                        source,
                        site.call,
                        f"coroutine `{site.callee.qualname}` is created but never "
                        "awaited; its body will not run — await it or wrap it in "
                        "asyncio.create_task()",
                    )


@register
class BlockingInAsyncRule(_SemanticsRule):
    """No blocking primitive may be reachable on the event loop."""

    rule_id = "ASYNC002"
    name = "blocking-in-async"
    rationale = (
        "one blocking call (sleep, file I/O, subprocess, heavy numpy, model "
        "predict) inside an async frame stalls every request on the loop; "
        "hop through run_in_executor instead — the call graph also catches "
        "primitives buried several sync calls deep"
    )

    def setup(self, project: Project) -> None:
        """Reset the per-run reachability memo."""
        super().setup(project)
        self._memo: dict[str, Optional[list[str]]] = {}

    def applies_to(self, source: SourceFile) -> bool:
        """Library only: tests/tools may block freely off the loop."""
        return source.tree is not None and source.scope is Scope.LIBRARY

    def _first_blocking(self, sym: SymbolInfo, depth: int = 0) -> Optional[list[str]]:
        """Blocking chain reached from ``sym``'s body, innermost last."""
        key = sym.qualname
        if key in self._memo:
            return self._memo[key]
        if depth > _MAX_DEPTH:
            return None
        self._memo[key] = None  # cycle guard while computing
        node = self._project.semantics.callgraph.callable_body(sym)
        result: Optional[list[str]] = None
        if node is not None and node.symbol.node is not None and not node.is_async:
            for child in own_body(node.symbol.node):
                if isinstance(child, ast.Call):
                    reason = _blocking_reason(child)
                    if reason is not None:
                        result = [node.symbol.qualname, reason]
                        break
            if result is None:
                for site in node.calls:
                    if site.kind not in ("direct", "method") or site.callee.is_async:
                        continue
                    sub = self._first_blocking(site.callee, depth + 1)
                    if sub is not None:
                        result = [node.symbol.qualname] + sub
                        break
        self._memo[key] = result
        return result

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Flag direct and call-graph-reachable blocking in async defs."""
        sem = self._semantics()
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for child in own_body(node):
                if isinstance(child, ast.Call):
                    reason = _blocking_reason(child)
                    if reason is not None:
                        yield self.finding(
                            source,
                            child,
                            f"blocking {reason} inside `async def {node.name}`; "
                            "hop through loop.run_in_executor()",
                        )
            fn = sem.callgraph.function_at(node)
            if fn is None:
                continue
            for site in fn.calls:
                # Direct and method calls run on the loop now; callbacks
                # registered here run on the loop later.  Executor edges
                # are the sanctioned escape hatch and are not followed.
                if site.kind not in ("direct", "method", "callback"):
                    continue
                if site.callee.is_async:
                    continue  # reported in its own (async) frame, if at all
                chain = self._first_blocking(site.callee)
                if chain is not None:
                    path = " -> ".join(chain)
                    yield self.finding(
                        source,
                        site.call,
                        f"`async def {node.name}` reaches blocking {chain[-1]} "
                        f"through {path}; hop through loop.run_in_executor()",
                    )


@register
class SyncLockAcrossAwaitRule(Rule):
    """``threading`` locks must not be held across an ``await``."""

    rule_id = "ASYNC003"
    name = "sync-lock-across-await"
    rationale = (
        "a threading.Lock held across an await keeps the loop thread from "
        "releasing it while other tasks (or executor threads) queue on it — "
        "the classic single-thread deadlock; use asyncio.Lock on the loop"
    )

    def applies_to(self, source: SourceFile) -> bool:
        """Library only — the fleet loop code."""
        return source.tree is not None and source.scope is Scope.LIBRARY

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Flag sync ``with <lock>:`` blocks containing an await."""
        lock_names: set[str] = set()
        lock_attrs: set[str] = set()
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            chain = call_chain(node.value)
            if chain is None:
                continue
            parts = chain.split(".")
            if parts[0] == "threading" and parts[-1] in _LOCK_FACTORIES:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        lock_names.add(target.id)
                    elif (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        lock_attrs.add(target.attr)
        if not (lock_names or lock_attrs):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.With):
                continue
            owner = enclosing_function(node, source.parent)
            if not isinstance(owner, ast.AsyncFunctionDef):
                continue
            for item in node.items:
                expr = item.context_expr
                held = (isinstance(expr, ast.Name) and expr.id in lock_names) or (
                    isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and expr.attr in lock_attrs
                )
                if held and _contains_await(node.body):
                    yield self.finding(
                        source,
                        node,
                        "threading lock held across an await suspends the loop "
                        "while holding it; use asyncio.Lock (or release before "
                        "awaiting)",
                    )


@register
class DroppedTaskRule(Rule):
    """``asyncio.create_task`` results must be referenced."""

    rule_id = "ASYNC004"
    name = "dropped-task"
    rationale = (
        "the event loop keeps only weak references to tasks: a create_task "
        "result used as a bare statement can be garbage-collected mid-flight "
        "and its failure is never observed — keep a reference or add a "
        "done-callback"
    )

    def applies_to(self, source: SourceFile) -> bool:
        """Everywhere — background tasks appear in tests and tools too."""
        return source.tree is not None

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Flag statement-level create_task/ensure_future calls."""
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Expr):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            tail = None
            if isinstance(call.func, ast.Attribute):
                tail = call.func.attr
            elif isinstance(call.func, ast.Name):
                tail = call.func.id
            if tail in ("create_task", "ensure_future"):
                yield self.finding(
                    source,
                    call,
                    f"result of `{tail}()` is dropped; the task may be "
                    "garbage-collected mid-flight — keep a reference or "
                    "add_done_callback()",
                )


@register
class CoroutineAsCallableRule(_SemanticsRule):
    """Coroutine functions are not plain callables."""

    rule_id = "ASYNC005"
    name = "coroutine-as-callable"
    rationale = (
        "handing an async def to a pool dispatch, executor, or loop "
        "callback slot calls it like a plain function: every 'result' is an "
        "un-run coroutine object, so the work silently never happens"
    )

    def applies_to(self, source: SourceFile) -> bool:
        """Everywhere — dispatch sites live in all trees."""
        return source.tree is not None

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Flag async defs in executor/callback argument slots."""
        sem = self._semantics()
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            fn = sem.callgraph.function_at(node)
            if fn is None:
                continue
            for site in fn.calls:
                if site.kind in ("executor", "callback") and site.callee.is_async:
                    yield self.finding(
                        source,
                        site.call,
                        f"coroutine function `{site.callee.qualname}` passed "
                        "where a plain callable is required; it would return "
                        "an un-run coroutine — pass a sync function or use "
                        "create_task/run_coroutine_threadsafe",
                    )
