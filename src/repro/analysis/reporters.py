"""Human, JSON, and GitHub-annotation renderings of a report.

The JSON form is versioned and machine-stable (sorted keys, no
timestamps, absolute paths, or cache temperatures), so
``results/ANALYSIS_baseline.json`` — a committed snapshot of the
per-rule finding counts — diffs cleanly when future PRs change the rule
pack or introduce findings.  Since version 2 the payload also carries
the walked file list, which makes it *complete*: a saved report can be
re-rendered in any format via :func:`report_from_payload` without
re-running the analyzer (how CI shares one run between its gate,
annotation, and baseline-diff steps).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .core import Finding, rule_catalog
from .runner import AnalysisReport

__all__ = [
    "REPORT_SCHEMA",
    "REPORT_VERSION",
    "render_human",
    "render_json",
    "render_github",
    "report_from_payload",
]

#: Schema marker embedded in every JSON report.
REPORT_SCHEMA = "repro.analysis.report"
#: Bumped on any backwards-incompatible field change.
#: v2: added ``files`` and ``totals`` (report reconstruction support).
REPORT_VERSION = 2


def render_human(report: AnalysisReport, *, show_suppressed: bool = False) -> str:
    """Terminal rendering: one line per finding plus a summary."""
    lines = []
    shown = report.findings if show_suppressed else report.unsuppressed
    for finding in shown:
        lines.append(finding.format())
    n_sup = len(report.suppressed)
    parsed = report.cache_hits + report.cache_misses
    summary = (
        f"[repro.analysis] {len(report.files)} files, "
        f"{len(report.rules_run)} rules, "
        f"{len(report.unsuppressed)} finding(s)"
        + (f", {n_sup} suppressed" if n_sup else "")
        + (f", cache {report.cache_hits}/{parsed} hits" if parsed else "")
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Stable JSON rendering (the baseline-snapshot format)."""
    names = {rid: name for rid, name, _rat in rule_catalog()}
    payload = {
        "schema": REPORT_SCHEMA,
        "version": REPORT_VERSION,
        "n_files": len(report.files),
        "files": list(report.files),
        "rules": {
            rid: {"name": names.get(rid, ""), **counts}
            for rid, counts in sorted(report.counts_by_rule().items())
        },
        "totals": {
            "findings": len(report.unsuppressed),
            "suppressed": len(report.suppressed),
        },
        "findings": [
            {
                "rule": f.rule_id,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "suppressed": f.suppressed,
            }
            for f in report.findings
        ],
        "exit_code": report.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _gh_escape_message(text: str) -> str:
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _gh_escape_property(text: str) -> str:
    return (
        _gh_escape_message(text).replace(":", "%3A").replace(",", "%2C")
    )


def render_github(report: AnalysisReport) -> str:
    """GitHub Actions workflow commands: inline PR annotations.

    Unsuppressed findings render as ``::error`` (they fail the gate);
    suppressed ones as ``::notice`` so the vetted exceptions stay
    visible in the UI without failing anything.
    """
    lines = []
    for f in report.findings:
        level = "notice" if f.suppressed else "error"
        title = f"repro.analysis {f.rule_id}" + (" (suppressed)" if f.suppressed else "")
        props = (
            f"file={_gh_escape_property(f.path)},line={f.line},"
            f"col={f.col + 1},title={_gh_escape_property(title)}"
        )
        lines.append(f"::{level} {props}::{_gh_escape_message(f.message)}")
    lines.append(
        f"[repro.analysis] {len(report.files)} files, "
        f"{len(report.rules_run)} rules, "
        f"{len(report.unsuppressed)} finding(s), "
        f"{len(report.suppressed)} suppressed"
    )
    return "\n".join(lines)


def report_from_payload(payload: dict[str, Any], root: Path) -> AnalysisReport:
    """Reconstruct a report from a version-2 JSON payload.

    Raises ``ValueError`` on schema/version mismatch — older payloads
    lack the file list and cannot round-trip.
    """
    if payload.get("schema") != REPORT_SCHEMA:
        raise ValueError(f"not an analysis report (schema={payload.get('schema')!r})")
    if payload.get("version") != REPORT_VERSION:
        raise ValueError(
            f"report version {payload.get('version')!r} != {REPORT_VERSION}; re-run the analyzer"
        )
    return AnalysisReport(
        root=root,
        files=list(payload.get("files", [])),
        rules_run=sorted(payload.get("rules", {})),
        findings=[
            Finding(
                rule_id=f["rule"],
                path=f["path"],
                line=f["line"],
                col=f["col"],
                message=f["message"],
                suppressed=f["suppressed"],
            )
            for f in payload.get("findings", [])
        ],
    )
