"""Human and JSON renderings of an :class:`AnalysisReport`.

The JSON form is versioned and machine-stable (sorted keys, no
timestamps or absolute paths), so ``results/ANALYSIS_baseline.json`` —
a committed snapshot of the per-rule finding counts — diffs cleanly
when future PRs change the rule pack or introduce findings.
"""

from __future__ import annotations

import json

from .core import rule_catalog
from .runner import AnalysisReport

__all__ = ["REPORT_SCHEMA", "REPORT_VERSION", "render_human", "render_json"]

#: Schema marker embedded in every JSON report.
REPORT_SCHEMA = "repro.analysis.report"
#: Bumped on any backwards-incompatible field change.
REPORT_VERSION = 1


def render_human(report: AnalysisReport, *, show_suppressed: bool = False) -> str:
    """Terminal rendering: one line per finding plus a summary."""
    lines = []
    shown = report.findings if show_suppressed else report.unsuppressed
    for finding in shown:
        lines.append(finding.format())
    n_sup = len(report.suppressed)
    summary = (
        f"[repro.analysis] {len(report.files)} files, "
        f"{len(report.rules_run)} rules, "
        f"{len(report.unsuppressed)} finding(s)"
        + (f", {n_sup} suppressed" if n_sup else "")
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Stable JSON rendering (the baseline-snapshot format)."""
    names = {rid: name for rid, name, _rat in rule_catalog()}
    payload = {
        "schema": REPORT_SCHEMA,
        "version": REPORT_VERSION,
        "n_files": len(report.files),
        "rules": {
            rid: {"name": names.get(rid, ""), **counts}
            for rid, counts in sorted(report.counts_by_rule().items())
        },
        "findings": [
            {
                "rule": f.rule_id,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "suppressed": f.suppressed,
            }
            for f in report.findings
        ],
        "exit_code": report.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
