"""Approximate project call graph built on the symbol graph.

For every function definition in the walked tree this records the call
sites whose targets resolve *within* the tree: direct calls, method
calls through annotated or locally-inferred receiver types, and
function-valued arguments handed to executors, pools, or loop callbacks
(``pool.map(fn, ...)``, ``run_in_executor(None, fn)``,
``call_soon(fn)``, ``Thread(target=fn)``).

Like the symbol graph, resolution is best-effort: a call whose target
cannot be proven inside the project produces *no* edge, so rules using
the graph can only under-report, never hallucinate targets.  The edge
``kind`` says how control reaches the callee:

- ``direct``   — plain call, runs on the caller's thread
- ``method``   — resolved through a receiver type, same thread
- ``executor`` — handed to a worker pool/executor, runs off-thread
- ``callback`` — registered on the event loop, runs on the loop later
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

from .symbols import SymbolGraph, SymbolInfo, module_path

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .walker import Project, SourceFile

__all__ = ["CallSite", "FunctionNode", "CallGraph", "own_body"]

# Callable-slot tables: argument position (or keyword) holding a
# function value.  ``map`` only counts as an executor slot when called
# as a method (``pool.map``), mirroring CONC001's dispatch heuristic.
_EXECUTOR_SLOTS: dict[str, int] = {
    "map": 0,
    "parallel_map": 0,
    "run_in_executor": 1,
    "to_thread": 0,
    "submit": 0,
}
_EXECUTOR_KWARGS: dict[str, str] = {"Thread": "target"}
_CALLBACK_SLOTS: dict[str, int] = {
    "call_soon": 0,
    "call_soon_threadsafe": 0,
    "call_later": 1,
    "call_at": 1,
    "add_done_callback": 0,
}

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def own_body(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own statements, skipping nested def/lambda bodies.

    Nested functions get their own :class:`FunctionNode`; code inside
    them does not run when the enclosing function runs.
    """
    stack = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class CallSite:
    """One resolved outgoing call edge."""

    call: ast.Call
    callee: SymbolInfo
    kind: str  # "direct" | "method" | "executor" | "callback"


@dataclass
class FunctionNode:
    """A function definition plus its resolved outgoing edges."""

    symbol: SymbolInfo
    calls: list[CallSite] = field(default_factory=list)

    @property
    def is_async(self) -> bool:
        """Whether the underlying definition is an ``async def``."""
        return self.symbol.is_async


@dataclass
class _Env:
    """Resolution context for one function body."""

    module: str
    cls: Optional[SymbolInfo]
    types: dict[str, SymbolInfo] = field(default_factory=dict)


class CallGraph:
    """Resolved call edges for every function in a :class:`Project`."""

    def __init__(self, project: "Project", symbols: SymbolGraph) -> None:
        self.symbols = symbols
        self.nodes: dict[str, FunctionNode] = {}
        self.by_ast: dict[int, FunctionNode] = {}
        self._attr_types: dict[str, dict[str, SymbolInfo]] = {}
        for table in symbols.tables.values():
            for sym in table.defs.values():
                if sym.kind != "function" or sym.node is None:
                    continue
                node = FunctionNode(symbol=sym)
                self.nodes[sym.qualname] = node
                self.by_ast[id(sym.node)] = node
        for node in list(self.nodes.values()):
            self._collect_calls(node)

    # ----------------------------------------------------------------- lookup

    def function_at(self, def_node: ast.AST) -> Optional[FunctionNode]:
        """The graph node for an ast (Async)FunctionDef, if known."""
        return self.by_ast.get(id(def_node))

    def node(self, qualname: str) -> Optional[FunctionNode]:
        """The graph node for a fully-qualified function name."""
        return self.nodes.get(qualname)

    def callable_body(self, sym: SymbolInfo) -> Optional[FunctionNode]:
        """The function node a call on ``sym`` executes.

        Functions map to themselves; classes map to their ``__init__``
        (walking resolvable bases); everything else has no body here.
        """
        if sym.kind == "function":
            return self.nodes.get(sym.qualname)
        if sym.kind == "class":
            init = self.symbols.class_member(sym, "__init__")
            if init is not None:
                return self.nodes.get(init.qualname)
        return None

    # ------------------------------------------------------------ env building

    def _enclosing_class(self, table_module: str, local_name: str) -> Optional[SymbolInfo]:
        if "." not in local_name:
            return None
        prefix = local_name.rsplit(".", 1)[0]
        table = self.symbols.tables.get(table_module)
        if table is None:
            return None
        owner = table.defs.get(prefix)
        if owner is not None and owner.kind == "class":
            return owner
        return None

    def _annotation_symbol(self, module: str, node: Optional[ast.AST]) -> Optional[SymbolInfo]:
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            text: Optional[str] = node.value if node.value.replace(".", "").isidentifier() else None
        elif isinstance(node, ast.Subscript):
            value = node.value
            if isinstance(value, ast.Name) and value.id == "Optional":
                return self._annotation_symbol(module, node.slice)
            return None
        else:
            text = _dotted(node)
        if not text:
            return None
        sym = self.symbols.resolve_dotted(module, text)
        if sym is not None and sym.kind == "class":
            return sym
        return None

    def _class_attr_types(self, cls: SymbolInfo) -> dict[str, SymbolInfo]:
        cached = self._attr_types.get(cls.qualname)
        if cached is not None:
            return cached
        result: dict[str, SymbolInfo] = {}
        self._attr_types[cls.qualname] = result
        if cls.node is None or not isinstance(cls.node, ast.ClassDef):
            return result
        module = cls.module

        def record_ann(name: str, annotation: Optional[ast.AST]) -> None:
            sym = self._annotation_symbol(module, annotation)
            if sym is not None:
                result[name] = sym

        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                record_ann(stmt.target.id, stmt.annotation)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for sub in own_body(stmt):
                    if isinstance(sub, ast.AnnAssign) and _is_self_attr(sub.target):
                        record_ann(sub.target.attr, sub.annotation)  # type: ignore[union-attr]
                    elif isinstance(sub, ast.Assign):
                        for target in sub.targets:
                            if _is_self_attr(target):
                                sym = self._value_class(module, sub.value, stmt)
                                if sym is not None:
                                    result[target.attr] = sym  # type: ignore[union-attr]
        return result

    def _value_class(
        self, module: str, value: ast.AST, owner: Optional[ast.AST]
    ) -> Optional[SymbolInfo]:
        """Class an assigned value is an instance of, if provable."""
        if isinstance(value, ast.Call):
            text = _dotted(value.func)
            if text:
                sym = self.symbols.resolve_dotted(module, text)
                if sym is not None and sym.kind == "class":
                    return sym
        elif isinstance(value, ast.Name) and owner is not None:
            # ``self.attr = param`` / ``x = param`` with an annotation.
            for arg in _all_args(owner):
                if arg.arg == value.id:
                    return self._annotation_symbol(module, arg.annotation)
        return None

    def _build_env(self, sym: SymbolInfo) -> _Env:
        env = _Env(module=sym.module, cls=self._enclosing_class(sym.module, sym.name))
        fn = sym.node
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return env
        for arg in _all_args(fn):
            resolved = self._annotation_symbol(sym.module, arg.annotation)
            if resolved is not None:
                env.types[arg.arg] = resolved
        for stmt in own_body(fn):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    inferred = self._value_class(sym.module, stmt.value, fn)
                    if inferred is not None:
                        env.types[target.id] = inferred
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                inferred = self._annotation_symbol(sym.module, stmt.annotation)
                if inferred is not None:
                    env.types[stmt.target.id] = inferred
        return env

    # ---------------------------------------------------------- call resolution

    def _receiver_class(self, env: _Env, node: ast.AST) -> Optional[SymbolInfo]:
        if isinstance(node, ast.Name):
            if node.id == "self":
                return env.cls
            return env.types.get(node.id)
        if isinstance(node, ast.Attribute):
            # Chase attribute chains through typed attributes, so
            # ``service.registry.available()`` resolves when ``service``
            # has a known class and its ``registry`` attr a known type.
            base = self._receiver_class(env, node.value)
            if base is not None:
                return self._class_attr_types(base).get(node.attr)
        return None

    def resolve_callable(self, env_module: str, env: _Env, node: ast.AST) -> Optional[SymbolInfo]:
        """Resolve a function-valued expression (not a call) to a symbol."""
        if isinstance(node, ast.Name):
            return self.symbols.resolve(env_module, node.id)
        if isinstance(node, ast.Attribute):
            recv = self._receiver_class(env, node.value)
            if recv is not None:
                return self.symbols.class_member(recv, node.attr)
            text = _dotted(node)
            if text:
                return self.symbols.resolve_dotted(env_module, text)
        return None

    def _resolve_call(self, env: _Env, call: ast.Call) -> Optional[tuple[SymbolInfo, str]]:
        func = call.func
        if isinstance(func, ast.Name):
            sym = self.symbols.resolve(env.module, func.id)
            if sym is not None and sym.kind in ("function", "class", "lambda"):
                return sym, "direct"
            return None
        if isinstance(func, ast.Attribute):
            recv = self._receiver_class(env, func.value)
            if recv is not None:
                member = self.symbols.class_member(recv, func.attr)
                if member is not None:
                    return member, "method"
                return None
            text = _dotted(func)
            if text:
                sym = self.symbols.resolve_dotted(env.module, text)
                if sym is not None and sym.kind in ("function", "class", "lambda"):
                    return sym, "direct"
        return None

    def _slot_arg(self, call: ast.Call, tail: str) -> Optional[ast.AST]:
        if tail in _EXECUTOR_KWARGS:
            wanted = _EXECUTOR_KWARGS[tail]
            for kw in call.keywords:
                if kw.arg == wanted:
                    return kw.value
            return None
        slot = _EXECUTOR_SLOTS.get(tail)
        if slot is None:
            slot = _CALLBACK_SLOTS.get(tail)
        if slot is None or slot >= len(call.args):
            return None
        arg = call.args[slot]
        if isinstance(arg, ast.Starred):
            return None
        return arg

    def _collect_calls(self, node: FunctionNode) -> None:
        fn = node.symbol.node
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        env = self._build_env(node.symbol)
        for child in own_body(fn):
            if not isinstance(child, ast.Call):
                continue
            resolved = self._resolve_call(env, child)
            if resolved is not None:
                callee, kind = resolved
                node.calls.append(CallSite(call=child, callee=callee, kind=kind))
            tail = _call_tail(child)
            if tail is None:
                continue
            if tail in _CALLBACK_SLOTS:
                kind = "callback"
            elif tail in _EXECUTOR_SLOTS or tail in _EXECUTOR_KWARGS:
                if tail == "map" and not isinstance(child.func, ast.Attribute):
                    continue  # builtin ``map`` is lazy, not a dispatch
                kind = "executor"
            else:
                continue
            arg = self._slot_arg(child, tail)
            if arg is None:
                continue
            target = self.resolve_callable(env.module, env, arg)
            if target is not None and target.kind in ("function", "lambda"):
                node.calls.append(CallSite(call=child, callee=target, kind=kind))

    # -------------------------------------------------------------- convenience

    def env_for(self, source: "SourceFile", def_node: ast.AST) -> _Env:
        """A resolution env for ad-hoc queries inside ``def_node``."""
        fn_node = self.by_ast.get(id(def_node))
        if fn_node is not None:
            return self._build_env(fn_node.symbol)
        return _Env(module=module_path(source.relpath), cls=None)


def _call_tail(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _dotted(node: ast.AST) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _all_args(fn: ast.AST) -> list[ast.arg]:
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return []
    a = fn.args
    out = list(a.posonlyargs) + list(a.args) + list(a.kwonlyargs)
    if a.vararg:
        out.append(a.vararg)
    if a.kwarg:
        out.append(a.kwarg)
    return out


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )
