"""Project-wide symbol graph: definitions, imports, and re-export chains.

This is the name-resolution half of the semantics layer (the other half
is :mod:`repro.analysis.callgraph`).  For every parsed source file it
records the module's local definitions (classes, functions, methods,
nested defs, module-level lambda bindings) and its import bindings, then
answers "what does name ``X`` used in module ``M`` actually refer to?" —
following ``from .mod import name`` chains, aliases, and package
``__init__`` re-exports across the whole walked tree.

Resolution is deliberately approximate and *silent on failure*: a name
that leaves the walked tree (stdlib, third-party, dynamic) resolves to
``None``, and rules built on top must treat ``None`` as "no finding".
See docs/STATIC_ANALYSIS.md for the false-negative contract.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .walker import Project, SourceFile

__all__ = ["SymbolInfo", "ModuleTable", "SymbolGraph", "module_path"]


def module_path(relpath: str) -> str:
    """Dotted module path for a root-relative ``.py`` path.

    ``src/repro/serving/router.py`` -> ``repro.serving.router`` and a
    package ``__init__.py`` maps to the package itself.  Paths outside
    ``src/`` (tests, tools, fixture corpora) keep their directory
    prefix, which is enough to make resolution *within* such a corpus
    work when it is walked as its own root.
    """
    parts = relpath.split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class SymbolInfo:
    """One resolved definition: a module, class, function, or lambda."""

    module: str
    name: str
    kind: str  # "module" | "class" | "function" | "lambda"
    is_async: bool = False
    nested: bool = False
    node: Optional[ast.AST] = None
    source: Optional["SourceFile"] = None

    @property
    def qualname(self) -> str:
        """Stable project-wide identifier, e.g. ``repro.x.Cls.meth``."""
        return f"{self.module}.{self.name}" if self.name else self.module

    @property
    def picklable_by_reference(self) -> bool:
        """Whether ``pickle`` can ship this callable by qualified name.

        Module-level functions and classes pickle by reference; lambdas
        and defs nested inside another function do not, which is what
        interprocedural CONC001 cares about.
        """
        if self.kind == "lambda" or self.nested:
            return False
        return self.kind in ("function", "class")


@dataclass
class ModuleTable:
    """Per-module symbol table: local defs plus import bindings."""

    module: str
    source: "SourceFile"
    defs: dict[str, SymbolInfo] = field(default_factory=dict)
    # local name -> (target module, target name or None for whole-module)
    imports: dict[str, tuple[str, Optional[str]]] = field(default_factory=dict)
    # class local name -> textual base-class names (resolved lazily)
    class_bases: dict[str, list[str]] = field(default_factory=dict)


def _import_base(module: str, source: "SourceFile", level: int) -> list[str]:
    """Package parts a ``level``-dot relative import is anchored at."""
    parts = module.split(".") if module else []
    is_pkg = source.relpath.endswith("__init__.py")
    pkg = parts if is_pkg else parts[:-1]
    hops = level - 1
    if hops:
        pkg = pkg[: len(pkg) - hops] if hops <= len(pkg) else []
    return pkg


class _TableBuilder(ast.NodeVisitor):
    """Collects one module's defs and import bindings."""

    def __init__(self, table: ModuleTable) -> None:
        self.table = table
        self._prefix: list[str] = []
        self._fn_depth = 0

    def _local_name(self, name: str) -> str:
        return ".".join(self._prefix + [name])

    def _add_def(self, name: str, kind: str, node: ast.AST, is_async: bool = False) -> None:
        local = self._local_name(name)
        self.table.defs[local] = SymbolInfo(
            module=self.table.module,
            name=local,
            kind=kind,
            is_async=is_async,
            nested=self._fn_depth > 0,
            node=node,
            source=self.table.source,
        )

    def _visit_function(self, node: ast.AST, name: str, is_async: bool) -> None:
        self._add_def(name, "function", node, is_async=is_async)
        self._prefix.append(name)
        self._fn_depth += 1
        self.generic_visit(node)
        self._fn_depth -= 1
        self._prefix.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name, is_async=True)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._add_def(node.name, "class", node)
        bases = []
        for base in node.bases:
            text = _dotted(base)
            if text:
                bases.append(text)
        self.table.class_bases[self._local_name(node.name)] = bases
        self._prefix.append(node.name)
        self.generic_visit(node)
        self._prefix.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._add_def(target.id, "lambda", node.value)
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.table.imports[alias.asname] = (alias.name, None)
            else:
                # ``import a.b.c`` binds the top-level package name.
                top = alias.name.split(".")[0]
                self.table.imports[top] = (top, None)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            pkg = _import_base(self.table.module, self.table.source, node.level)
            target_mod = ".".join(pkg + (node.module.split(".") if node.module else []))
        else:
            target_mod = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue  # star imports are not followed (documented gap)
            local = alias.asname or alias.name
            self.table.imports[local] = (target_mod, alias.name)


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class SymbolGraph:
    """Cross-module name resolution over a walked :class:`Project`."""

    def __init__(self, project: "Project") -> None:
        self.tables: dict[str, ModuleTable] = {}
        for source in project.sources:
            if source.tree is None:
                continue
            mod = module_path(source.relpath)
            table = ModuleTable(module=mod, source=source)
            _TableBuilder(table).visit(source.tree)
            self.tables[mod] = table

    def module(self, name: str) -> Optional[ModuleTable]:
        """The table for a dotted module path, if it was walked."""
        return self.tables.get(name)

    def _module_symbol(self, name: str) -> Optional[SymbolInfo]:
        table = self.tables.get(name)
        if table is None:
            return None
        return SymbolInfo(module=name, name="", kind="module", source=table.source)

    def resolve(
        self,
        module: str,
        name: str,
        _seen: Optional[set[tuple[str, str]]] = None,
    ) -> Optional[SymbolInfo]:
        """Resolve a bare ``name`` used in ``module`` to its definition.

        Follows import and re-export chains with a cycle guard; returns
        ``None`` whenever the chain leaves the walked tree.
        """
        table = self.tables.get(module)
        if table is None:
            return None
        if name in table.defs:
            return table.defs[name]
        if name in table.imports:
            key = (module, name)
            seen = _seen if _seen is not None else set()
            if key in seen:
                return None
            seen.add(key)
            target_mod, target_name = table.imports[name]
            if target_name is None:
                return self._module_symbol(target_mod)
            resolved = self.resolve(target_mod, target_name, seen)
            if resolved is not None:
                return resolved
            # ``from pkg import mod`` where ``mod`` is a submodule.
            return self._module_symbol(f"{target_mod}.{target_name}")
        # Implicit submodule: ``pkg/__init__`` may reference ``pkg.sub``.
        return self._module_symbol(f"{module}.{name}")

    def resolve_dotted(self, module: str, dotted: str) -> Optional[SymbolInfo]:
        """Resolve a dotted use like ``mod.Cls.method`` seen in ``module``."""
        parts = dotted.split(".")
        sym = self.resolve(module, parts[0])
        for part in parts[1:]:
            if sym is None:
                return None
            if sym.kind == "module":
                sym = self.resolve(sym.module, part)
            elif sym.kind == "class":
                sym = self.class_member(sym, part)
            else:
                return None
        return sym

    def class_member(
        self,
        cls: SymbolInfo,
        name: str,
        _seen: Optional[set[str]] = None,
    ) -> Optional[SymbolInfo]:
        """Look up a method/nested class on ``cls``, walking resolvable bases."""
        if cls.kind != "class":
            return None
        table = self.tables.get(cls.module)
        if table is None:
            return None
        member = table.defs.get(f"{cls.name}.{name}")
        if member is not None:
            return member
        seen = _seen if _seen is not None else set()
        if cls.qualname in seen:
            return None
        seen.add(cls.qualname)
        for base_text in table.class_bases.get(cls.name, ()):
            base = self.resolve_dotted(cls.module, base_text)
            if base is not None and base.kind == "class":
                found = self.class_member(base, name, seen)
                if found is not None:
                    return found
        return None
