"""DET rule pack — randomness and ordering invariants.

The reproduction's headline guarantee is a bit-identical KS checksum
across serial, pooled and shared-memory execution at any worker count.
That only holds if every random draw flows through a stream derived
from :func:`repro.parallel.seeding.seed_for` (or an explicit integer
seed), no code path consults process-global RNG state, and no result
depends on hash-ordering.  These rules make those conventions
machine-checked for library code (:class:`~repro.analysis.walker.Scope`
``LIBRARY``); tests and tools are free to compare floats exactly —
that *is* how bit-identity is asserted.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .astutil import call_chain
from .core import Finding, Rule, register
from .walker import Scope, SourceFile

__all__ = [
    "GlobalNumpyRandomRule",
    "StdlibRandomRule",
    "NondeterministicSeedRule",
    "UnorderedIterationRule",
    "FloatEqualityRule",
]

#: ``np.random.<attr>`` accesses that construct *seedable* objects and
#: are therefore allowed; everything else on the module touches or
#: derives from process-global state.
_ALLOWED_NP_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "RandomState",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}

#: Callables that mint RNG state and must receive an explicit seed.
_RNG_CONSTRUCTORS = {"default_rng", "RandomState", "SeedSequence"}

#: Dotted call chains whose result is wall-clock/OS entropy — never a seed.
_ENTROPY_SOURCES = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "os.urandom",
    "os.getpid",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.randbits",
}


class _LibraryRule(Rule):
    """Base for rules that police shipped library code only."""

    def applies_to(self, source: SourceFile) -> bool:
        """Library scope with a successfully parsed tree."""
        return source.scope is Scope.LIBRARY and source.tree is not None


@register
class GlobalNumpyRandomRule(_LibraryRule):
    """No process-global ``np.random.*`` state in library code."""

    rule_id = "DET001"
    name = "global-np-random"
    rationale = (
        "np.random.seed/rand/... use process-global state; worker count and "
        "dispatch order would change results. Derive streams with "
        "seed_for(...) + np.random.default_rng instead."
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Flag calls through ``np.random``/``numpy.random`` globals."""
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = call_chain(node)
            if chain is None:
                continue
            parts = chain.split(".")
            if (
                len(parts) >= 3
                and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] not in _ALLOWED_NP_RANDOM
            ):
                yield self.finding(
                    source,
                    node,
                    f"call to process-global RNG `{chain}`; derive a "
                    "Generator via seed_for(...)/default_rng instead",
                )


@register
class StdlibRandomRule(_LibraryRule):
    """No stdlib ``random`` module in library code."""

    rule_id = "DET002"
    name = "stdlib-random"
    rationale = (
        "the stdlib random module is global-state, unseeded by default and "
        "not stream-splittable across workers; all library randomness goes "
        "through numpy Generators derived from seed_for."
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Flag ``import random`` / ``from random import ...``."""
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            source, node, "stdlib `random` imported in library code"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.finding(
                        source, node, "stdlib `random` imported in library code"
                    )


@register
class NondeterministicSeedRule(_LibraryRule):
    """RNG constructors must receive an explicit, non-entropy seed."""

    rule_id = "DET003"
    name = "nondeterministic-seed"
    rationale = (
        "default_rng()/SeedSequence() with no arguments pull OS entropy, and "
        "time-derived seeds differ per run; both break replayability of the "
        "KS checksum."
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Flag zero-argument or wall-clock-seeded RNG construction."""
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = call_chain(node)
            if chain is None or chain.split(".")[-1] not in _RNG_CONSTRUCTORS:
                continue
            ctor = chain.split(".")[-1]
            if not node.args and not node.keywords:
                yield self.finding(
                    source,
                    node,
                    f"`{ctor}()` with no seed draws OS entropy; pass a "
                    "seed_for(...)-derived SeedSequence or integer seed",
                )
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Call):
                        sub_chain = call_chain(sub)
                        if sub_chain in _ENTROPY_SOURCES:
                            yield self.finding(
                                source,
                                sub,
                                f"`{ctor}` seeded from `{sub_chain}` is "
                                "different on every run",
                            )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = call_chain(node)
        return chain in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register
class UnorderedIterationRule(_LibraryRule):
    """No direct iteration over set expressions in library code."""

    rule_id = "DET004"
    name = "unordered-iteration"
    rationale = (
        "set iteration order depends on PYTHONHASHSEED for str keys, so "
        "feeding it into fold construction or feature assembly makes results "
        "process-dependent; wrap the expression in sorted(...)."
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Flag ``for ... in <set-expr>`` and comprehension equivalents."""
        for node in ast.walk(source.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it):
                    yield self.finding(
                        source,
                        it,
                        "iteration over a set expression is hash-ordered; "
                        "wrap it in sorted(...)",
                    )


@register
class FloatEqualityRule(_LibraryRule):
    """No ``==``/``!=`` against float literals in library code."""

    rule_id = "DET005"
    name = "float-equality"
    rationale = (
        "exact float comparison hides representation drift that the "
        "bit-identity tests are designed to catch at the boundary; use "
        "tolerances (np.isclose) — or suppress where an exact-zero "
        "degenerate-scale guard is intended."
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Flag Compare nodes mixing Eq/NotEq with a float constant."""
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(
                isinstance(c, ast.Constant) and isinstance(c.value, float)
                for c in operands
            ):
                yield self.finding(
                    source,
                    node,
                    "float literal compared with ==/!=; use a tolerance or "
                    "suppress an intentional exact-zero guard",
                )
