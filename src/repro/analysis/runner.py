"""Analysis driver: walk, check, suppress, aggregate.

:func:`run_analysis` is the single entry point used by the CLI, the
tier-1 repo-clean gate and the framework's own tests.  It builds the
:class:`~repro.analysis.walker.Project`, runs every registered rule
over it, applies ``# repro: noqa[RULE-ID]`` suppressions, and returns
an :class:`AnalysisReport` whose :attr:`~AnalysisReport.exit_code` is
non-zero iff any *unsuppressed* finding remains.

Files that fail to parse surface as ``GEN001`` findings rather than
crashing the run, so one bad file cannot hide the rest of the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .core import Finding, Rule, all_rules
from .walker import Project, build_project

__all__ = ["AnalysisReport", "run_analysis", "repo_root", "PARSE_ERROR_ID"]

#: Pseudo rule id for files the walker could not parse.
PARSE_ERROR_ID = "GEN001"


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    root: Path
    files: list[str] = field(default_factory=list)
    rules_run: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    #: Parse-cache accounting (kept out of the JSON report on purpose:
    #: the baseline diff must not depend on cache temperature).
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def unsuppressed(self) -> list[Finding]:
        """Findings that count toward the exit code."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        """Findings silenced by a ``# repro: noqa[...]`` comment."""
        return [f for f in self.findings if f.suppressed]

    @property
    def exit_code(self) -> int:
        """0 when clean (ignoring suppressed findings), else 1."""
        return 1 if self.unsuppressed else 0

    def counts_by_rule(self) -> dict[str, dict[str, int]]:
        """``rule_id -> {"findings": n, "suppressed": m}`` (all rules run)."""
        counts = {rid: {"findings": 0, "suppressed": 0} for rid in self.rules_run}
        for finding in self.findings:
            row = counts.setdefault(
                finding.rule_id, {"findings": 0, "suppressed": 0}
            )
            if finding.suppressed:
                row["suppressed"] += 1
            else:
                row["findings"] += 1
        return counts


def repo_root() -> Path:
    """Repository root inferred from this installed source tree."""
    # src/repro/analysis/runner.py -> repo root is four levels up.
    return Path(__file__).resolve().parents[3]


def _apply_suppression(finding: Finding, project: Project) -> Finding:
    for source in project.sources:
        if source.relpath == finding.path:
            if finding.rule_id in source.suppressions.get(finding.line, ()):
                return finding.as_suppressed()
            break
    return finding


def _sort_key(finding: Finding):
    return (finding.path, finding.line, finding.col, finding.rule_id)


def run_analysis(
    paths: Sequence[Path | str] | None = None,
    *,
    root: Path | str | None = None,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    rules: Sequence[Rule] | None = None,
    use_cache: bool = True,
) -> AnalysisReport:
    """Run the rule set over *paths* and return the report.

    ``root`` anchors relative paths and scope classification (default:
    the repository containing this package).  ``paths`` defaults to the
    standard ``src``/``tools``/``tests`` roots below ``root``.
    ``select``/``ignore`` filter rules by id; ``rules`` injects explicit
    instances (used by the framework's own tests).  ``use_cache``
    controls the content-hash AST cache.
    """
    root_path = Path(root) if root is not None else repo_root()
    path_list = [Path(p) for p in paths] if paths else None
    project = build_project(root_path, path_list, use_cache=use_cache)
    active = list(rules) if rules is not None else all_rules(select, ignore)

    findings: list[Finding] = []
    for source in project.sources:
        if source.parse_error is not None:
            findings.append(
                Finding(
                    rule_id=PARSE_ERROR_ID,
                    path=source.relpath,
                    line=1,
                    col=0,
                    message=f"file does not parse: {source.parse_error}",
                )
            )
    for rule in active:
        rule.setup(project)
    for rule in active:
        for source in project.sources:
            if source.tree is None or not rule.applies_to(source):
                continue
            findings.extend(rule.check(source))
    for rule in active:
        findings.extend(rule.finalize(project))

    findings = sorted(
        (_apply_suppression(f, project) for f in findings), key=_sort_key
    )
    return AnalysisReport(
        root=root_path,
        files=[s.relpath for s in project.sources],
        rules_run=[r.rule_id for r in active],
        findings=findings,
        cache_hits=project.cache_hits,
        cache_misses=project.cache_misses,
    )
