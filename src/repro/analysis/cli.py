"""Command-line interface: ``python -m repro.analysis``.

Examples::

    python -m repro.analysis                       # whole repo, human output
    python -m repro.analysis --format json -o results/ANALYSIS_baseline.json
    python -m repro.analysis src/repro/stats       # one subtree
    python -m repro.analysis --select DET001,DET005
    python -m repro.analysis --root tests/analysis/fixtures   # any corpus
    python -m repro.analysis --list-rules
    python -m repro.analysis --format github                  # PR annotations
    python -m repro.analysis --from-report results/ANALYSIS_baseline.json \
        --format github                                       # re-render, no re-run

Exit status: 0 when no unsuppressed finding remains, 1 otherwise,
2 on usage errors (unknown rule ids, missing paths, stale reports).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .core import rule_catalog
from .reporters import render_github, render_human, render_json, report_from_payload
from .runner import repo_root, run_analysis

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based invariant linter: determinism, concurrency/data-plane, "
            "observability-contract and docstring rules for this repository."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: src, tools, tests)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="project root for relative paths and scope classification "
        "(default: this repository)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "github"),
        default="human",
        help="report format (default: human; github = Actions annotations)",
    )
    parser.add_argument(
        "--from-report",
        type=Path,
        default=None,
        help="re-render a saved JSON report instead of re-running the analyzer",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-hash AST cache for this run",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=None,
        help="write the report to a file instead of stdout",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in human output",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _split_ids(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv: Sequence[str] | None = None) -> int:
    """Run the analyzer; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rid, name, rationale in rule_catalog():
            print(f"{rid}  {name}\n    {rationale}")
        return 0
    for path in args.paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    if args.from_report is not None:
        try:
            payload = json.loads(args.from_report.read_text())
            report = report_from_payload(payload, args.root or repo_root())
        except (OSError, ValueError) as exc:  # missing file / stale schema
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        try:
            report = run_analysis(
                args.paths or None,
                root=args.root,
                select=_split_ids(args.select),
                ignore=_split_ids(args.ignore),
                use_cache=not args.no_cache,
            )
        except ValueError as exc:  # unknown rule ids
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.format == "json":
        text = render_json(report)
    elif args.format == "github":
        text = render_github(report) + "\n"
    else:
        text = render_human(report, show_suppressed=args.show_suppressed) + "\n"
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text)
    else:
        sys.stdout.write(text)
    return report.exit_code
