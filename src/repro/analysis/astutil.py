"""Small AST helpers shared by the rule packs."""

from __future__ import annotations

import ast

__all__ = ["dotted_name", "call_chain", "first_arg", "enclosing_function"]


def dotted_name(node: ast.AST) -> str | None:
    """``"np.random.seed"`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_chain(call: ast.Call) -> str | None:
    """Dotted name of a call's callee, or ``None`` for computed callees."""
    return dotted_name(call.func)


def first_arg(call: ast.Call) -> ast.expr | None:
    """First positional argument of *call*, or ``None``."""
    return call.args[0] if call.args else None


def enclosing_function(node: ast.AST, parent_of) -> ast.AST | None:
    """Nearest enclosing function def of *node* (via parent links)."""
    cur = parent_of(node)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return cur
        cur = parent_of(cur)
    return None
