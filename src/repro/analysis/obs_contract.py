"""OBS rule pack — static metrics/trace contract enforcement.

``docs/OBSERVABILITY.md`` promises to list **every** counter, gauge,
histogram and span name the library emits.  The runtime half of that
contract lives in ``tests/obs/test_contract.py``; this pack is the
static half, and it checks *both directions*:

* **OBS001** — every literal name passed to
  ``obs.counter/gauge/observe/span`` in library code appears in the
  contract document;
* **OBS002** — every name documented in the contract's Counters /
  Gauges / Histograms / Spans tables is emitted somewhere in library
  code (no dead contract entries);
* **OBS003** — emission sites must use string *literals* for names,
  because a computed name cannot be cross-checked statically (and the
  contract test's scan would silently miss it).

The ``repro.obs`` package itself is exempt — it is the facade, not an
emission site.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from .astutil import dotted_name
from .core import Finding, Rule, register
from .walker import Project, Scope, SourceFile

__all__ = [
    "CONTRACT_DOC",
    "documented_names",
    "UndocumentedMetricRule",
    "DeadContractEntryRule",
    "DynamicMetricNameRule",
]

#: Root-relative path of the contract document.
CONTRACT_DOC = "docs/OBSERVABILITY.md"

#: Emission helpers on the ``obs`` facade whose first argument is a name.
_EMIT_ATTRS = {"counter", "gauge", "observe", "span"}

#: Markdown sections whose tables enumerate contract names.
_NAME_SECTIONS = ("## Counters", "## Gauges", "## Histograms", "## Spans")

_BACKTICKED = re.compile(r"`([^`]+)`")


def documented_names(doc_text: str) -> dict[str, int]:
    """Contract names -> line number, parsed from the doc's name tables.

    Only the *first cell* of table rows inside the Counters / Gauges /
    Histograms / Spans sections counts, so prose mentions of helper
    functions or file paths elsewhere in the document never register as
    contract entries.  A cell may list several backticked names
    (``hits`` / ``misses`` pairs share a row).
    """
    names: dict[str, int] = {}
    section_active = False
    for lineno, line in enumerate(doc_text.splitlines(), start=1):
        if line.startswith("## "):
            section_active = line.strip() in _NAME_SECTIONS
            continue
        if not section_active or not line.lstrip().startswith("|"):
            continue
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if not cells or set(cells[0]) <= {"-", " ", ":"}:
            continue  # separator row
        first = cells[0]
        if first in ("Name", ""):
            continue  # header row
        for name in _BACKTICKED.findall(first):
            names.setdefault(name, lineno)
    return names


def _emission_sites(source: SourceFile) -> Iterable[tuple[ast.Call, str | None]]:
    """``(call, literal_name_or_None)`` for every obs emission in *source*."""
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        if node.func.attr not in _EMIT_ATTRS:
            continue
        chain = dotted_name(node.func.value)
        if chain is None or chain.split(".")[-1] != "obs":
            continue
        arg = node.args[0] if node.args else None
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            yield node, arg.value
        else:
            yield node, None


class _ObsRule(Rule):
    """Base: library scope, excluding the obs facade package."""

    def applies_to(self, source: SourceFile) -> bool:
        """Parsed library files outside ``repro/obs``."""
        return (
            source.scope is Scope.LIBRARY
            and source.tree is not None
            and "repro/obs/" not in source.relpath
        )


@register
class UndocumentedMetricRule(_ObsRule):
    """Every emitted metric/span literal is documented in the contract."""

    rule_id = "OBS001"
    name = "undocumented-metric"
    rationale = (
        "docs/OBSERVABILITY.md is the stability contract for every emitted "
        "name; an undocumented emission is an unversioned API change."
    )

    def __init__(self) -> None:
        self._doc_names: dict[str, int] = {}

    def setup(self, project: Project) -> None:
        """Load the contract tables once per run."""
        text = project.read_doc(CONTRACT_DOC)
        self._doc_names = documented_names(text) if text else {}

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Flag emission literals absent from the contract tables."""
        for node, name in _emission_sites(source):
            if name is not None and name not in self._doc_names:
                yield self.finding(
                    source,
                    node,
                    f"emitted name `{name}` is not documented in {CONTRACT_DOC}",
                )


@register
class DeadContractEntryRule(_ObsRule):
    """Every documented contract name is emitted somewhere in the code."""

    rule_id = "OBS002"
    name = "dead-contract-entry"
    rationale = (
        "a documented-but-never-emitted name means the contract drifted from "
        "the code — readers instrument dashboards against metrics that never "
        "arrive."
    )

    def __init__(self) -> None:
        self._emitted: set[str] = set()

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Accumulate emitted literals (no per-file findings)."""
        for _node, name in _emission_sites(source):
            if name is not None:
                self._emitted.add(name)
        return ()

    def finalize(self, project: Project) -> Iterable[Finding]:
        """Flag contract entries that no library file emits.

        Skipped on partial runs — with only a subtree walked, absence
        of an emission proves nothing.
        """
        if project.partial:
            return
        text = project.read_doc(CONTRACT_DOC)
        if text is None:
            return
        for name, lineno in sorted(documented_names(text).items()):
            if name not in self._emitted:
                yield Finding(
                    rule_id=self.rule_id,
                    path=CONTRACT_DOC,
                    line=lineno,
                    col=0,
                    message=(
                        f"documented name `{name}` is never emitted by "
                        "library code (dead contract entry)"
                    ),
                )


@register
class DynamicMetricNameRule(_ObsRule):
    """Emission sites must name their metric/span with a string literal."""

    rule_id = "OBS003"
    name = "dynamic-metric-name"
    rationale = (
        "computed names defeat both this static cross-check and the contract "
        "test's source scan; the set of emitted names must be closed at "
        "review time."
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Flag obs emissions whose first argument is not a str literal."""
        for node, name in _emission_sites(source):
            if name is None:
                yield self.finding(
                    source,
                    node,
                    "obs emission with a computed name; use a string literal "
                    "so the contract stays statically checkable",
                )
