"""CONC rule pack — data-plane and pool-dispatch invariants.

The worker pool and shared-memory plane keep their guarantees only when
call sites hold up their end: dispatched callables must cross process
boundaries (else the pool silently runs serial and the parallel paths
are never exercised), every published segment must be unlinked on all
paths (``SharedArrayStore`` owns that — provided it is used as a
context manager or owned by an object with a ``close`` lifecycle), raw
segment creation stays inside ``repro.parallel.shm`` (the single owner
of unlink bookkeeping), and attached views are never written (a write
would race with sibling workers reading the same bytes).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from .astutil import call_chain, dotted_name, enclosing_function, first_arg
from .callgraph import own_body
from .core import Finding, Rule, register
from .symbols import SymbolInfo, module_path
from .walker import Project, SourceFile

__all__ = [
    "UnpicklableDispatchRule",
    "ShmLifecycleRule",
    "RawSegmentRule",
    "SharedViewMutationRule",
    "RawMatrixPublishRule",
]


def _parsed(source: SourceFile) -> bool:
    return source.tree is not None


def _module_level_defs(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            names.update(alias.asname or alias.name.split(".")[0] for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            names.update(alias.asname or alias.name for alias in node.names)
    return names


def _nested_defs(tree: ast.Module, parent_of) -> set[str]:
    nested: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if enclosing_function(node, parent_of) is not None:
                nested.add(node.name)
    return nested


def _lambda_bindings(tree: ast.Module) -> set[str]:
    bound: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
    return bound


def _is_dispatch_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "parallel_map"
    if isinstance(func, ast.Attribute) and func.attr == "map":
        # `<receiver>.map(fn, items)` — process pools in this codebase;
        # the builtin map() is a bare Name and never matches.
        return not (
            isinstance(func.value, ast.Name) and func.value.id in ("self", "cls")
        )
    return False


@register
class UnpicklableDispatchRule(Rule):
    """Pool-dispatched callables must be module-level picklable."""

    rule_id = "CONC001"
    name = "unpicklable-dispatch"
    rationale = (
        "WorkerPool.map / parallel_map fall back to serial, silently, when "
        "the callable cannot pickle; lambdas and nested defs therefore "
        "disable the very parallelism the call asks for."
    )

    def setup(self, project: Project) -> None:
        """Keep the project for cross-module target resolution."""
        self._project = project

    def applies_to(self, source: SourceFile) -> bool:
        """Everywhere — a silently-serial dispatch is a bug in any tree."""
        return _parsed(source)

    def _resolve_target(self, source: SourceFile, fn: ast.AST) -> Optional[SymbolInfo]:
        """Resolve a dispatched name through the symbol graph."""
        text = dotted_name(fn)
        if text is None:
            return None
        symbols = self._project.semantics.symbols
        return symbols.resolve_dotted(module_path(source.relpath), text)

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Flag lambdas / nested defs handed to a pool dispatch.

        Local bindings are judged lexically; anything else is resolved
        through the project symbol graph, so a lambda or nested def
        reached through an import (or a package re-export) is caught at
        the dispatch site too.
        """
        tree = source.tree
        nested = _nested_defs(tree, source.parent)
        module_level = _module_level_defs(tree)
        lambdas = _lambda_bindings(tree)
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and _is_dispatch_call(node)):
                continue
            fn = first_arg(node)
            if fn is None:
                continue
            if isinstance(fn, ast.Lambda):
                yield self.finding(
                    source,
                    fn,
                    "lambda dispatched through a process pool cannot pickle "
                    "and silently runs serial; hoist it to a module-level def",
                )
            elif isinstance(fn, ast.Name) and (
                fn.id in lambdas or (fn.id in nested and fn.id not in module_level)
            ):
                yield self.finding(
                    source,
                    fn,
                    f"`{fn.id}` is defined inside a function scope and "
                    "cannot pickle for pool dispatch; hoist it to module "
                    "level (or functools.partial of a module-level def)",
                )
            else:
                target = self._resolve_target(source, fn)
                if target is not None and not target.picklable_by_reference:
                    what = "a lambda" if target.kind == "lambda" else "a nested def"
                    yield self.finding(
                        source,
                        fn,
                        f"dispatch target resolves to `{target.qualname}`, "
                        f"{what} that cannot pickle for pool dispatch; it "
                        "silently runs serial — bind a module-level def",
                    )


@register
class ShmLifecycleRule(Rule):
    """``SharedArrayStore()`` must have an owned unlink path."""

    rule_id = "CONC002"
    name = "shm-lifecycle"
    rationale = (
        "a store constructed as a bare local can leak /dev/shm segments when "
        "an exception skips close(); construct it in a `with` block or assign "
        "it to an instance attribute of an object whose close() runs it."
    )

    #: Handoff depth for "a callee closes it" ownership transfer.
    _HANDOFF_DEPTH = 3

    def setup(self, project: Project) -> None:
        """Keep the project for interprocedural ownership checks."""
        self._project = project

    def applies_to(self, source: SourceFile) -> bool:
        """Everywhere except the defining module itself."""
        return _parsed(source) and not source.relpath.endswith("repro/parallel/shm.py")

    @staticmethod
    def _closes(stmts: Iterable[ast.AST], name: str) -> bool:
        """Whether ``<name>.close()`` / ``.unlink_all()`` appears here."""
        stack = list(stmts)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("close", "unlink_all")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                return True
            stack.extend(ast.iter_child_nodes(node))
        return False

    def _closed_in_finally(self, owner: ast.AST, name: str) -> bool:
        for node in own_body(owner):
            if isinstance(node, ast.Try) and self._closes(node.finalbody, name):
                return True
        return False

    def _callee_closes(
        self, source: SourceFile, owner: ast.AST, name: str, depth: int = 0
    ) -> bool:
        """Whether the store is handed to a project function that closes it.

        Follows the symbol graph through at most ``_HANDOFF_DEPTH``
        ownership transfers; anything unresolvable counts as *not*
        closed, so this only ever removes findings when ownership is
        provable.
        """
        if depth >= self._HANDOFF_DEPTH:
            return False
        symbols = self._project.semantics.symbols
        callgraph = self._project.semantics.callgraph
        module = module_path(source.relpath)
        for node in own_body(owner):
            if not isinstance(node, ast.Call):
                continue
            pos = next(
                (
                    i
                    for i, arg in enumerate(node.args)
                    if isinstance(arg, ast.Name) and arg.id == name
                ),
                None,
            )
            if pos is None:
                continue
            text = dotted_name(node.func)
            if text is None:
                continue
            target = symbols.resolve_dotted(module, text)
            if target is None:
                continue
            body = callgraph.callable_body(target)
            if body is None or body.symbol.node is None:
                continue
            fn_ast = body.symbol.node
            if not isinstance(fn_ast, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = [a.arg for a in fn_ast.args.posonlyargs + fn_ast.args.args]
            if params and params[0] in ("self", "cls"):
                params = params[1:]
            if pos >= len(params):
                continue
            param = params[pos]
            if self._closes(fn_ast.body, param) or (
                body.symbol.source is not None
                and self._callee_closes(body.symbol.source, fn_ast, param, depth + 1)
            ):
                return True
        return False

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Flag bare-local construction of SharedArrayStore.

        Ownership is accepted when the store is (a) a ``with`` context,
        (b) assigned to a ``self`` attribute, (c) closed in a
        ``finally`` block of the constructing function, or (d) handed to
        a project function that provably closes it (call-graph check).
        """
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = call_chain(node)
            if chain is None or chain.split(".")[-1] != "SharedArrayStore":
                continue
            parent = source.parent(node)
            if isinstance(parent, ast.withitem):
                continue
            if isinstance(parent, ast.Assign) and all(
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
                for t in parent.targets
            ):
                continue  # lifecycle owned by the enclosing object's close()
            if isinstance(parent, ast.Assign) and all(
                isinstance(t, ast.Name) for t in parent.targets
            ):
                owner = enclosing_function(node, source.parent) or source.tree
                names = [t.id for t in parent.targets if isinstance(t, ast.Name)]
                if all(
                    self._closed_in_finally(owner, n) or self._callee_closes(source, owner, n)
                    for n in names
                ):
                    continue
            yield self.finding(
                source,
                node,
                "SharedArrayStore() without an owned unlink path (no `with`, "
                "self-attribute, finally-close, or provable callee close); "
                "segments may leak if close() is skipped",
            )


@register
class RawSegmentRule(Rule):
    """Raw shared-memory segments are created only inside the shm module."""

    rule_id = "CONC003"
    name = "raw-shm-segment"
    rationale = (
        "repro.parallel.shm is the single owner of segment unlink "
        "bookkeeping; SharedMemory(create=True) anywhere else bypasses the "
        "always-unlinked guarantee (attaching with create=False is fine)."
    )

    def applies_to(self, source: SourceFile) -> bool:
        """Everywhere except the owning module."""
        return _parsed(source) and not source.relpath.endswith("repro/parallel/shm.py")

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Flag ``SharedMemory(..., create=True, ...)`` calls."""
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = call_chain(node)
            if chain is None or chain.split(".")[-1] != "SharedMemory":
                continue
            creates = any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            )
            if creates:
                yield self.finding(
                    source,
                    node,
                    "raw SharedMemory(create=True) outside repro.parallel.shm; "
                    "publish through a SharedArrayStore so the segment is "
                    "always unlinked",
                )


#: Call-chain tails that bind a binned (uint8) encoding of their first
#: positional argument.
_BINNING_TAILS = {"fit_transform", "_binned_matrix"}


@register
class RawMatrixPublishRule(Rule):
    """Publish the uint8 codes, not the float64 matrix they encode."""

    rule_id = "CONC005"
    name = "raw-matrix-publish"
    rationale = (
        "once a matrix has a binned uint8 encoding, shipping the float64 "
        "original through the shared-memory plane moves ~8x the bytes per "
        "worker for no information the histogram kernel can use; publish "
        "the BinnedMatrix codes and bin bounds instead."
    )

    def applies_to(self, source: SourceFile) -> bool:
        """Everywhere — dispatch helpers live in several trees."""
        return _parsed(source)

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Flag ``publish(X)`` where the same function also binned ``X``."""
        # Per enclosing function: names whose binned encoding was bound
        # there via `binned = <BinMapper()>.fit_transform(X)` or the
        # engine's `self._binned_matrix(X, key)` cache accessor.
        binned_sources: dict[ast.AST | None, set[str]] = {}
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            # Tail of the callee even through a call receiver, so
            # `BinMapper().fit_transform(X)` matches too.
            func = node.value.func
            tail = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            if tail not in _BINNING_TAILS:
                continue
            arg = first_arg(node.value)
            if isinstance(arg, ast.Name):
                scope = enclosing_function(node, source.parent)
                binned_sources.setdefault(scope, set()).add(arg.id)
        if not binned_sources:
            return
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "publish"
            ):
                continue
            arg = first_arg(node)
            if not isinstance(arg, ast.Name):
                continue
            scope = enclosing_function(node, source.parent)
            if arg.id in binned_sources.get(scope, ()):
                yield self.finding(
                    source,
                    node,
                    f"`{arg.id}` has a binned uint8 encoding in this scope "
                    "but the float64 matrix is published to the pool; ship "
                    "the BinnedMatrix codes/bounds instead",
                )


_MUTATING_METHODS = {"fill", "sort", "put", "itemset", "partition", "resize", "setfield"}


@register
class SharedViewMutationRule(Rule):
    """Views returned by ``attach`` are read-only and must stay so."""

    rule_id = "CONC004"
    name = "shared-view-mutation"
    rationale = (
        "attach() maps the parent's segment read-only because sibling "
        "workers read the same bytes concurrently; writing through the view "
        "(or flipping writeable) is a data race on the fold inputs."
    )

    def applies_to(self, source: SourceFile) -> bool:
        """Everywhere — worker-side code lives in several trees."""
        return _parsed(source)

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Flag writes to names bound from ``attach(...)``."""
        attached: set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                chain = call_chain(node.value)
                if chain is not None and chain.split(".")[-1] == "attach":
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            attached.add(target.id)
        if not attached:
            return
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    base = target
                    while isinstance(base, (ast.Subscript, ast.Attribute)):
                        base = base.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id in attached
                        and base is not target
                    ):
                        yield self.finding(
                            source,
                            node,
                            f"write through `{base.id}`, a read-only shared "
                            "view from attach(); copy before mutating",
                        )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if (
                    node.func.attr in _MUTATING_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in attached
                ):
                    yield self.finding(
                        source,
                        node,
                        f"mutating method `.{node.func.attr}()` on a read-only "
                        "shared view from attach(); copy before mutating",
                    )
