"""DOC rule pack — public-API docstring coverage (ex ``tools/check_docs.py``).

Every module, public module-level function/class and public method of a
public class under the library tree must carry a docstring.  The gaps
that predate the gate are pinned in :data:`ALLOWLIST` so coverage can
only improve; when an allowlisted definition gains its docstring, the
now-stale entry must be deleted (**DOC002**), shrinking the list over
time.  ``tools/check_docs.py`` remains as a thin deprecated shim over
the helpers here, so existing invocations and the tier-1 wrapper test
keep working unchanged.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator

from .core import Finding, Rule, register
from .walker import Project, Scope, SourceFile

__all__ = [
    "ALLOWLIST",
    "iter_module_gaps",
    "iter_gaps",
    "check",
    "MissingDocstringRule",
    "StaleAllowlistRule",
]

#: Known documentation gaps at the time the gate was introduced.
#: Do not add entries — document the definition instead.
ALLOWLIST: frozenset[str] = frozenset(
    {
        "repro/core/features.py:FeatureConfig.n_moments",
        "repro/core/quantile_representation.py:QuantileRepresentation.encode",
        "repro/core/quantile_representation.py:QuantileRepresentation.encoding_key",
        "repro/core/quantile_representation.py:QuantileRepresentation.n_dims",
        "repro/core/quantile_representation.py:QuantileRepresentation.reconstruct",
        "repro/core/representations.py:HistogramRepresentation.encode",
        "repro/core/representations.py:HistogramRepresentation.encoding_key",
        "repro/core/representations.py:HistogramRepresentation.n_dims",
        "repro/core/representations.py:HistogramRepresentation.reconstruct",
        "repro/core/representations.py:PearsonRndRepresentation.reconstruct",
        "repro/core/representations.py:PyMaxEntRepresentation.reconstruct",
        "repro/ml/knn.py:KNNRegressor.fit",
        "repro/ml/model_selection.py:GroupKFold.get_n_splits",
        "repro/ml/model_selection.py:GroupKFold.split",
        "repro/ml/model_selection.py:KFold.get_n_splits",
        "repro/ml/model_selection.py:KFold.split",
        "repro/ml/model_selection.py:LeaveOneGroupOut.get_n_splits",
        "repro/ml/model_selection.py:LeaveOneGroupOut.split",
        "repro/ml/scaling.py:RobustScaler.fit",
        "repro/ml/scaling.py:StandardScaler.fit",
        "repro/simbench/variability.py:RunDraws.n_runs",
        "repro/stats/empirical.py:ECDF.from_samples",
    }
)


def _public(name: str) -> bool:
    return not name.startswith("_")


def iter_module_gaps(tree: ast.Module) -> Iterator[tuple[ast.AST, str]]:
    """``(node, qualname)`` per undocumented public definition of *tree*."""
    if ast.get_docstring(tree) is None:
        yield tree, "<module>"
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _public(node.name) and ast.get_docstring(node) is None:
                yield node, node.name
        elif isinstance(node, ast.ClassDef) and _public(node.name):
            if ast.get_docstring(node) is None:
                yield node, node.name
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if _public(item.name) and ast.get_docstring(item) is None:
                        yield item, f"{node.name}.{item.name}"


def _gap_key(relpath: str, qualname: str) -> str:
    # Allowlist entries are relative to `src/` (historical format of
    # tools/check_docs.py); strip the prefix when present.
    rel = relpath[4:] if relpath.startswith("src/") else relpath
    return f"{rel}:{qualname}"


def iter_gaps(src_root: Path) -> Iterator[str]:
    """Yield ``"<relpath>:<qualname>"`` per undocumented definition.

    Path-based variant retained for the ``tools/check_docs.py`` shim;
    *src_root* is the ``src`` directory, and yielded paths are relative
    to it.
    """
    for path in sorted(src_root.rglob("*.py")):
        rel = path.relative_to(src_root).as_posix()
        tree = ast.parse(path.read_text(), filename=str(path))
        for _node, qualname in iter_module_gaps(tree):
            yield f"{rel}:{qualname}"


def check(src_root: Path) -> tuple[list[str], list[str]]:
    """(new gaps, stale allowlist entries) for *src_root*."""
    gaps = set(iter_gaps(src_root))
    missing = sorted(gaps - ALLOWLIST)
    stale = sorted(ALLOWLIST - gaps)
    return missing, stale


@register
class MissingDocstringRule(Rule):
    """Public definitions in library code must carry docstrings."""

    rule_id = "DOC001"
    name = "missing-docstring"
    rationale = (
        "the public API is the reproduction's paper-facing surface; "
        "undocumented definitions rot fastest. Pre-existing gaps are pinned "
        "in the ALLOWLIST baseline so coverage can only improve."
    )

    def __init__(self) -> None:
        self.seen_gap_keys: set[str] = set()

    def applies_to(self, source: SourceFile) -> bool:
        """Parsed library files only."""
        return source.scope is Scope.LIBRARY and source.tree is not None

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Flag undocumented public definitions not in the baseline."""
        for node, qualname in iter_module_gaps(source.tree):
            key = _gap_key(source.relpath, qualname)
            self.seen_gap_keys.add(key)
            if key in ALLOWLIST:
                continue
            yield self.finding(
                source,
                node,
                f"public definition `{qualname}` has no docstring (do not "
                "extend the allowlist — document it)",
            )


@register
class StaleAllowlistRule(Rule):
    """Allowlist entries must disappear once their target is documented."""

    rule_id = "DOC002"
    name = "stale-allowlist"
    rationale = (
        "a stale baseline entry would let a future regression of that "
        "definition slip through unnoticed; deleting it keeps the baseline "
        "shrink-only."
    )

    def __init__(self) -> None:
        self._gaps: set[str] = set()
        self._saw_library = False

    def applies_to(self, source: SourceFile) -> bool:
        """Parsed library files only."""
        return source.scope is Scope.LIBRARY and source.tree is not None

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Accumulate present gaps (no per-file findings)."""
        self._saw_library = True
        for _node, qualname in iter_module_gaps(source.tree):
            self._gaps.add(_gap_key(source.relpath, qualname))
        return ()

    def finalize(self, project: Project) -> Iterable[Finding]:
        """Flag baseline entries whose gap no longer exists.

        Skipped on partial runs and for corpora that do not contain the
        library tree the baseline describes (e.g. the test fixtures).
        """
        if project.partial or not self._saw_library:
            return
        if not any(s.relpath.startswith("src/repro/") for s in project.sources):
            return
        for entry in sorted(ALLOWLIST - self._gaps):
            yield Finding(
                rule_id=self.rule_id,
                path="src/repro/analysis/docstrings.py",
                line=1,
                col=0,
                message=(
                    f"stale ALLOWLIST entry `{entry}` — the definition is now "
                    "documented; delete the entry"
                ),
            )
