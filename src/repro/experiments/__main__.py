"""Command-line experiment driver: ``python -m repro.experiments``.

Regenerates the paper's figures/tables outside pytest.  Examples::

    python -m repro.experiments --list
    python -m repro.experiments fig1 fig3 --scale small
    python -m repro.experiments fig4 --scale medium --results-dir out/
    python -m repro.experiments fig4 --trace results/trace_fig4.jsonl

Each experiment prints its terminal rendering and exports its series to
the results directory (CSV/JSON).  ``--trace PATH`` (or the
``REPRO_TRACE`` environment variable) additionally enables
:mod:`repro.obs` and writes one JSONL observability trace per
experiment — summarize it with ``python tools/trace_report.py PATH``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from .. import obs
from ..viz.export import export_series, export_table
from . import figures, reporting, usecase1, usecase2
from .config import PAPER_CONFIG, ExperimentConfig


def _config_for_scale(scale: str, workers: int) -> ExperimentConfig:
    from dataclasses import replace

    if scale == "paper":
        cfg = PAPER_CONFIG
    elif scale == "medium":
        cfg = PAPER_CONFIG.scaled_down(n_benchmarks=32, n_runs=500)
    elif scale == "small":
        cfg = PAPER_CONFIG.scaled_down(n_benchmarks=16, n_runs=300)
    else:
        raise SystemExit(f"unknown scale {scale!r}")
    return replace(cfg, n_workers=workers)


def run_fig1(cfg, out):
    """Fig. 1 — motivation: measured vs small-sample vs predicted KDEs."""
    campaigns = usecase1.measure_campaigns(cfg, "intel")
    data = figures.figure1(campaigns, cfg)
    from ..viz.ascii import density_ascii

    lo, hi = float(data.measured.min()) - 0.02, float(data.measured.max()) + 0.02
    print(density_ascii(data.measured, label="(a) measured", x_range=(lo, hi)))
    for k in sorted(data.small_samples):
        print(density_ascii(data.small_samples[k], label=f"{k} samples", x_range=(lo, hi)))
    print(density_ascii(data.predicted, label="(f) predicted", x_range=(lo, hi)))
    print(f"prediction KS = {data.prediction_ks:.3f}")
    export_series(
        {
            "measured": data.measured,
            "predicted": data.predicted,
            "ks": data.prediction_ks,
        },
        "fig1_motivation",
        out,
    )


def run_fig3(cfg, out):
    """Fig. 3 — relative-time distribution zoo on the Intel system."""
    campaigns = usecase1.measure_campaigns(cfg, "intel")
    from ..viz.ascii import density_ascii

    for name in sorted(campaigns):
        print(density_ascii(campaigns[name].relative_times(), label=name, width=56, x_range=(0.9, 1.4)))
    export_table(figures.figure3(campaigns), "fig3_shape_summary", out)


def run_fig4(cfg, out):
    """Fig. 4 — UC1 representation x model grid (with stage timing)."""
    timer = reporting.StageTimer()
    with timer.time("measure"):
        campaigns = usecase1.measure_campaigns(cfg, "intel")
    grid = usecase1.representation_model_grid(campaigns, cfg, timer=timer)
    print(reporting.grid_report(grid, title="Fig. 4 — UC1 representation x model"))
    print(f"[stages] {timer.report()}")
    export_table(grid, "fig4_uc1_grid", out)


_FIG5_BENCHMARKS = (
    "spec_accel/359",
    "npb/bt",
    "rodinia/heartwall",
    "mllib/dtclassifier",
    "spec_accel/303",
    "spec_omp/376",
    "parsec/streamcluster",
)

_FIG9_BENCHMARKS = (
    "npb/is",
    "rodinia/heartwall",
    "parboil/bfs",
    "mllib/gbtclassifier",
    "parsec/canneal",
    "mllib/correlation",
)


def run_fig5(cfg, out):
    """Fig. 5 — UC1 measured-vs-predicted overlay examples."""
    from ..viz.ascii import overlay_ascii

    campaigns = usecase1.measure_campaigns(cfg, "intel")
    available = tuple(b for b in _FIG5_BENCHMARKS if b in campaigns)
    examples = usecase1.overlay_examples(campaigns, available, cfg)
    series = {}
    for ex in sorted(examples, key=lambda e: e.ks):
        print(f"\n{ex.benchmark}  KS={ex.ks:.3f}")
        print(overlay_ascii(ex.measured, ex.predicted, label=ex.benchmark.split("/")[1]))
        series[ex.benchmark] = {"ks": ex.ks, "measured": ex.measured, "predicted": ex.predicted}
    export_series(series, "fig5_uc1_overlays", out)


def run_fig9(cfg, out):
    """Fig. 9 — UC2 measured-vs-predicted overlay examples."""
    from ..viz.ascii import overlay_ascii

    amd, intel = usecase2.measure_both_systems(cfg)
    available = tuple(b for b in _FIG9_BENCHMARKS if b in amd and b in intel)
    examples = usecase2.overlay_examples(amd, intel, available, cfg)
    series = {}
    for ex in sorted(examples, key=lambda e: e.ks):
        print(f"\n{ex.benchmark}  KS={ex.ks:.3f}")
        print(overlay_ascii(ex.measured, ex.predicted, label=ex.benchmark.split("/")[1]))
        series[ex.benchmark] = {"ks": ex.ks, "measured": ex.measured, "predicted": ex.predicted}
    export_series(series, "fig9_uc2_overlays", out)


def run_fig6(cfg, out):
    """Fig. 6 — UC1 KS vs probe-sample count sweep."""
    campaigns = usecase1.measure_campaigns(cfg, "intel")
    sweep = usecase1.sample_count_sweep(campaigns, cfg)
    print(reporting.sweep_report(sweep, title="Fig. 6 — UC1 KS vs #samples"))
    export_table(sweep, "fig6_uc1_samples", out)


def run_fig7(cfg, out):
    """Fig. 7 — UC2 representation x model grid (with stage timing)."""
    timer = reporting.StageTimer()
    with timer.time("measure"):
        amd, intel = usecase2.measure_both_systems(cfg)
    grid = usecase2.representation_model_grid(amd, intel, cfg, timer=timer)
    print(reporting.grid_report(grid, title="Fig. 7 — UC2 representation x model"))
    print(f"[stages] {timer.report()}")
    export_table(grid, "fig7_uc2_grid", out)


def run_fig8(cfg, out):
    """Fig. 8 — UC2 prediction-direction study."""
    amd, intel = usecase2.measure_both_systems(cfg)
    table = usecase2.direction_study(amd, intel, cfg)
    print(reporting.direction_report(table, title="Fig. 8 — UC2 direction study"))
    export_table(table, "fig8_uc2_direction", out)


def run_tables(cfg, out):
    """Tables I-III — roster and profiling-metric catalogs."""
    print(figures.table1().to_markdown())
    print()
    print(f"Table II/III: {len(figures.table2_3())} metrics")
    export_table(figures.table1(), "table1_roster", out)
    export_table(figures.table2_3(), "tables2_3_metrics", out)


EXPERIMENTS = {
    "tables": run_tables,
    "fig1": run_fig1,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
}


def _trace_path(base: str, experiment: str, n_experiments: int) -> Path:
    """Trace destination for one experiment under the ``--trace`` flag.

    A single experiment writes exactly to the given path; with several
    experiments the id is inserted before the suffix
    (``trace.jsonl`` -> ``trace.fig4.jsonl``) so each run keeps its own
    file.
    """
    path = Path(base)
    if n_experiments == 1:
        return path
    suffix = path.suffix or ".jsonl"
    return path.with_name(f"{path.stem}.{experiment.replace('/', '_')}{suffix}")


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids (see --list)")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--scale", default="small", choices=("paper", "medium", "small"))
    parser.add_argument("--results-dir", default=None)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--trace",
        default=os.environ.get("REPRO_TRACE") or None,
        metavar="PATH",
        help="enable repro.obs and write a JSONL trace per experiment "
        "(default: the REPRO_TRACE environment variable)",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("available experiments:", ", ".join(EXPERIMENTS))
        return 0

    cfg = _config_for_scale(args.scale, args.workers)
    for name in args.experiments:
        fn = EXPERIMENTS.get(name)
        if fn is None:
            print(f"unknown experiment {name!r}; use --list", file=sys.stderr)
            return 2
        t0 = time.time()
        print(f"=== {name} (scale={args.scale}) ===")
        if args.trace:
            obs.enable()
        fn(cfg, args.results_dir)
        if args.trace:
            out = reporting.write_run_trace(
                _trace_path(args.trace, name, len(args.experiments)),
                experiment=name,
                scale=args.scale,
                n_workers=args.workers,
            )
            obs.disable()
            print(f"[trace] wrote {out}")
        print(f"[{name} done in {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
