"""Use case 1 experiment runners — Figs. 4, 5 and 6 of the paper.

* :func:`representation_model_grid` — Fig. 4: per-benchmark KS scores for
  every (distribution representation, model) combination at a fixed probe
  size;
* :func:`sample_count_sweep` — Fig. 6: KS vs. number of probe runs for the
  winning combination;
* :func:`overlay_examples` — Fig. 5: measured vs. predicted sample pairs
  for selected benchmarks across the KS spectrum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs, registry
from .._validation import check_random_state
from ..core.engine import FewRunsDesign
from ..core.evaluation import (
    score_fold_vectors,
    score_vector_sets,
    summarize_ks,
)
from ..core.features import FeatureConfig
from ..core.predictors import FewRunsPredictor
from ..data.dataset import RunCampaign
from ..data.table import ColumnTable
from ..parallel.seeding import seed_for
from ..parallel.worker_pool import WorkerPool
from ..simbench.runner import measure_all
from .config import ExperimentConfig, PAPER_CONFIG
from .reporting import StageTimer

__all__ = [
    "measure_campaigns",
    "representation_model_grid",
    "sample_count_sweep",
    "overlay_examples",
    "OverlayExample",
]


def measure_campaigns(
    config: ExperimentConfig = PAPER_CONFIG, system: str = "intel"
) -> dict[str, RunCampaign]:
    """Measured campaigns for the configured roster on one system."""
    return measure_all(
        system,
        benchmarks=config.benchmarks,
        n_runs=config.n_runs,
        root_seed=config.root_seed,
        n_workers=config.n_workers,
    )


def representation_model_grid(
    campaigns: dict[str, RunCampaign],
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    timer: StageTimer | None = None,
) -> ColumnTable:
    """Fig. 4 data: long-form table (representation, model, benchmark, ks).

    The featurization design is built once and shared by all nine cells
    (see :mod:`repro.core.engine`); representations with a common
    encoding additionally share fold-model predictions.  Pass a
    :class:`~repro.experiments.reporting.StageTimer` to collect the
    featurize/fit/score phase breakdown.
    """
    timer = timer if timer is not None else StageTimer()
    with timer.time("featurize"):
        design = FewRunsDesign(
            campaigns,
            n_probe_runs=config.n_probe_runs,
            n_replicas=config.n_replicas_uc1,
            seed=config.eval_seed,
        )
    frames = []
    with WorkerPool(config.n_workers) as pool:
        for rep_name in config.representations:
            rep = registry.representation(rep_name)
            for model_name in config.models:
                model, model_key = config.resolve_grid_model(model_name)
                with obs.span("cell", representation=rep_name, model=model_name):
                    with timer.time("fit"):
                        vectors = design.fold_vectors(
                            model,
                            rep,
                            model_key=model_key,
                            n_workers=config.n_workers,
                            pool=pool,
                        )
                    with timer.time("score"):
                        tab = score_fold_vectors(
                            vectors, rep, design.measured, seed=config.eval_seed
                        )
                for row in tab.rows():
                    frames.append(
                        {
                            "representation": rep_name,
                            "model": model_name,
                            "benchmark": row["benchmark"],
                            "suite": row["suite"],
                            "ks": float(row["ks"]),
                        }
                    )
    return ColumnTable.from_rows(frames)


def sample_count_sweep(
    campaigns: dict[str, RunCampaign],
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    representation: str = "pearsonrnd",
    model: str = "knn",
) -> ColumnTable:
    """Fig. 6 data: per-benchmark KS for each probe size.

    One persistent :class:`~repro.parallel.WorkerPool` serves every probe
    size (the design — and therefore the fold matrices — changes per
    size, but the workers and shm plane are reused), and scoring is
    batched across sizes with :func:`score_vector_sets` so each
    benchmark's 1,000-run measured sample is sorted once per size-batch
    instead of once per (size, benchmark) decode.  Bit-identical to the
    per-size :func:`~repro.core.evaluation.evaluate_few_runs` loop it
    replaces.
    """
    rep = registry.representation(representation)
    mdl_key = model.lower()
    vector_sets = []
    measured = None
    with WorkerPool(config.n_workers) as pool:
        for n_samples in config.sample_counts:
            design = FewRunsDesign(
                campaigns,
                n_probe_runs=n_samples,
                n_replicas=config.n_replicas_uc1,
                seed=config.eval_seed,
            )
            vector_sets.append(
                design.fold_vectors(
                    registry.model(mdl_key),
                    rep,
                    model_key=mdl_key,
                    n_workers=config.n_workers,
                    pool=pool,
                )
            )
            measured = design.measured
    tables = score_vector_sets(vector_sets, rep, measured, seed=config.eval_seed)
    frames = []
    for n_samples, tab in zip(config.sample_counts, tables):
        for row in tab.rows():
            frames.append(
                {
                    "n_samples": n_samples,
                    "benchmark": row["benchmark"],
                    "suite": row["suite"],
                    "ks": float(row["ks"]),
                }
            )
    return ColumnTable.from_rows(frames)


@dataclass(frozen=True)
class OverlayExample:
    """Measured vs. predicted relative-time samples for one benchmark."""

    benchmark: str
    ks: float
    measured: np.ndarray
    predicted: np.ndarray


def overlay_examples(
    campaigns: dict[str, RunCampaign],
    benchmarks: tuple[str, ...],
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    representation: str = "pearsonrnd",
    model: str = "knn",
) -> list[OverlayExample]:
    """Fig. 5 data: leave-one-out predictions for selected benchmarks.

    Each selected benchmark is predicted by a model trained on every
    *other* campaign (true LOGO), probed with ``config.n_probe_runs``
    fresh runs.
    """
    rep = registry.representation(representation)
    out = []
    for bench in benchmarks:
        if bench not in campaigns:
            continue
        predictor = FewRunsPredictor(
            model=registry.model(model),
            representation=rep,
            n_probe_runs=config.n_probe_runs,
            n_replicas=config.n_replicas_uc1,
            seed=config.eval_seed,
        ).fit(campaigns, exclude=(bench,))
        rng = check_random_state(
            seed_for(config.eval_seed, "overlay", bench, str(config.n_probe_runs))
        )
        probe = campaigns[bench].sample_runs(config.n_probe_runs, rng)
        vector = predictor.predict_vector(probe)
        recon = rep.reconstruct(vector)
        measured = campaigns[bench].relative_times()
        predicted = recon.sample(campaigns[bench].n_runs, rng=rng)
        ks = rep.ks_score(vector, measured, rng=rng)
        out.append(
            OverlayExample(
                benchmark=bench, ks=float(ks), measured=measured, predicted=predicted
            )
        )
    return out
