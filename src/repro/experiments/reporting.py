"""Text reporting of experiment results.

Turns the long-form tables the runners produce into the compact summaries
the paper states in prose — e.g. "the mean KS score of the PearsonRnd
representation for the best choice of model is 0.241" — plus terminal
violin renderings of the figures.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from .. import obs
from ..data.table import ColumnTable
from ..viz.ascii import violin_ascii

__all__ = [
    "StageTimer",
    "write_run_trace",
    "grid_mean_ks",
    "best_by_representation",
    "best_by_model",
    "grid_report",
    "sweep_report",
    "direction_report",
]


class StageTimer:
    """Accumulates wall time per pipeline stage.

    The runners time four canonical stages — ``measure`` (campaign
    simulation), ``featurize`` (design/feature-matrix construction),
    ``fit`` (per-fold model refits) and ``score`` (KS evaluation) — so a
    phase breakdown can be printed after every sweep and exported to the
    perf record (``tools/bench_report.py``).

    Each timed block also emits one ``stage`` span into :mod:`repro.obs`
    (attribute ``stage=<name>``) covering exactly the same region, which
    is what makes the trace's per-stage totals reconcile with this
    timer's breakdown.
    """

    def __init__(self) -> None:
        self.stages: dict[str, float] = {}

    @contextmanager
    def time(self, stage: str):
        """Context manager adding the elapsed wall time to *stage*."""
        with obs.span("stage", stage=stage):
            t0 = time.perf_counter()
            try:
                yield self
            finally:
                self.add(stage, time.perf_counter() - t0)

    def add(self, stage: str, seconds: float) -> None:
        """Add *seconds* to a stage's accumulated total."""
        self.stages[stage] = self.stages.get(stage, 0.0) + float(seconds)

    @property
    def total(self) -> float:
        """Sum of all stage times."""
        return float(sum(self.stages.values()))

    def report(self) -> str:
        """One-line phase breakdown, e.g. ``fit 9.80s | score 1.21s``."""
        if not self.stages:
            return "no stages timed"
        parts = [f"{name} {secs:.2f}s" for name, secs in self.stages.items()]
        return " | ".join(parts) + f"  (total {self.total:.2f}s)"

    def as_dict(self) -> dict[str, float]:
        """Stage -> seconds mapping (for JSON export)."""
        return dict(self.stages)


def write_run_trace(path, *, experiment: str, **meta) -> Path:
    """Export the buffered observability run as one JSONL trace file.

    Thin wrapper over :func:`repro.obs.write_trace` that stamps the
    experiment id (plus any extra keyword metadata) into the trace's
    ``meta`` record.  The experiment CLI calls this once per experiment
    when ``--trace`` is given; ``tools/trace_report.py`` consumes the
    output.
    """
    return obs.write_trace(path, meta={"experiment": experiment, **meta})


def grid_mean_ks(grid: ColumnTable) -> ColumnTable:
    """Mean KS per (representation, model) from a long-form grid table."""
    reps = grid["representation"]
    models = grid["model"]
    ks = np.asarray(grid["ks"], dtype=np.float64)
    rows = []
    for rep in sorted(set(reps)):
        for model in sorted(set(models)):
            mask = (reps == rep) & (models == model)
            rows.append(
                {
                    "representation": rep,
                    "model": model,
                    "mean_ks": float(ks[mask].mean()),
                    "median_ks": float(np.median(ks[mask])),
                }
            )
    return ColumnTable.from_rows(rows)


def best_by_representation(grid: ColumnTable) -> dict[str, float]:
    """Per representation: the mean KS of its best model (paper's numbers)."""
    means = grid_mean_ks(grid)
    out: dict[str, float] = {}
    for row in means.rows():
        rep = str(row["representation"])
        val = float(row["mean_ks"])
        out[rep] = min(out.get(rep, np.inf), val)
    return out


def best_by_model(grid: ColumnTable) -> dict[str, float]:
    """Per model: the mean KS of its best representation."""
    means = grid_mean_ks(grid)
    out: dict[str, float] = {}
    for row in means.rows():
        model = str(row["model"])
        val = float(row["mean_ks"])
        out[model] = min(out.get(model, np.inf), val)
    return out


def grid_report(grid: ColumnTable, *, title: str) -> str:
    """Violin rendering + ranked summary of a representation x model grid."""
    reps = grid["representation"]
    models = grid["model"]
    ks = np.asarray(grid["ks"], dtype=np.float64)
    groups = {}
    for rep in sorted(set(reps)):
        for model in sorted(set(models)):
            mask = (reps == rep) & (models == model)
            groups[f"{rep}+{model}"] = ks[mask]
    lines = [title, "=" * len(title), violin_ascii(groups), ""]
    lines.append("best model per representation: " + str(
        {k: round(v, 3) for k, v in best_by_representation(grid).items()}
    ))
    lines.append("best representation per model: " + str(
        {k: round(v, 3) for k, v in best_by_model(grid).items()}
    ))
    return "\n".join(lines)


def sweep_report(sweep: ColumnTable, *, title: str) -> str:
    """Violin rendering of a sample-count sweep (Fig. 6)."""
    counts = np.asarray(sweep["n_samples"])
    ks = np.asarray(sweep["ks"], dtype=np.float64)
    groups = {
        f"n={int(c)}": ks[counts == c] for c in sorted(set(counts.tolist()))
    }
    means = {name: float(v.mean()) for name, v in groups.items()}
    lines = [title, "=" * len(title), violin_ascii(groups), "", f"mean KS: {means}"]
    return "\n".join(lines)


def direction_report(table: ColumnTable, *, title: str) -> str:
    """Violin rendering of the direction study (Fig. 8)."""
    dirs = table["direction"]
    ks = np.asarray(table["ks"], dtype=np.float64)
    groups = {str(d): ks[dirs == d] for d in sorted(set(dirs))}
    lines = [title, "=" * len(title), violin_ascii(groups)]
    return "\n".join(lines)
