"""Standalone figure/table data generators — Fig. 1, Fig. 3, Tables I-III.

These experiments need no trained model (Fig. 1's prediction panel reuses
the use-case-1 machinery):

* :func:`figure1` — the motivation figure: SPEC OMP 376 measured from
  1,000 runs vs. naive 2/3/5/10-sample estimates vs. a 10-sample
  prediction;
* :func:`figure3` — the variability zoo: relative-time distribution of all
  benchmarks on the Intel system;
* :func:`table1` / :func:`table2_3` — the benchmark roster and metric
  catalogs as tidy tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import check_random_state
from ..data.catalogs import AMD_METRICS, INTEL_METRICS
from ..data.dataset import RunCampaign
from ..data.table import ColumnTable
from ..parallel.seeding import seed_for
from ..simbench.suites import SUITES, suite_of
from ..stats.moments import moment_vector
from .config import ExperimentConfig, PAPER_CONFIG
from .usecase1 import overlay_examples

__all__ = ["Figure1Data", "figure1", "figure3", "table1", "table2_3"]

FIG1_BENCHMARK = "spec_omp/376"
FIG1_SMALL_SAMPLES = (2, 3, 5, 10)


@dataclass(frozen=True)
class Figure1Data:
    """All six panels of Fig. 1.

    ``measured`` is panel (a); ``small_samples[k]`` are panels (b-e);
    ``predicted`` is panel (f).
    """

    benchmark: str
    measured: np.ndarray
    small_samples: dict[int, np.ndarray]
    predicted: np.ndarray
    prediction_ks: float


def figure1(
    campaigns: dict[str, RunCampaign],
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    benchmark: str = FIG1_BENCHMARK,
) -> Figure1Data:
    """Reproduce Fig. 1 for *benchmark* (default SPEC OMP 376)."""
    campaign = campaigns[benchmark]
    measured = campaign.relative_times()
    rng = check_random_state(seed_for(config.eval_seed, "fig1", benchmark))
    small = {
        k: np.sort(rng.choice(measured, size=k, replace=False))
        for k in FIG1_SMALL_SAMPLES
    }
    [example] = overlay_examples(
        campaigns, (benchmark,), config, representation="pearsonrnd", model="knn"
    )
    return Figure1Data(
        benchmark=benchmark,
        measured=measured,
        small_samples=small,
        predicted=example.predicted,
        prediction_ks=example.ks,
    )


def figure3(campaigns: dict[str, RunCampaign]) -> ColumnTable:
    """Fig. 3 summary: shape statistics of every benchmark's distribution.

    The paper shows one KDE per benchmark; the tabular form records the
    moments plus the 1%-99% relative-time span so wide/narrow/multimodal
    structure is quantified (densities themselves are exported as series
    by the bench target).
    """
    rows = []
    for name in sorted(campaigns):
        rel = campaigns[name].relative_times()
        mv = moment_vector(rel)
        p01, p99 = np.percentile(rel, [1.0, 99.0])
        rows.append(
            {
                "benchmark": name,
                "suite": suite_of(name),
                "std": mv.std,
                "skew": mv.skew,
                "kurt": mv.kurt,
                "span_p01_p99": float(p99 - p01),
            }
        )
    return ColumnTable.from_rows(rows)


def table1() -> ColumnTable:
    """Table I: the benchmark roster."""
    rows = [
        {"suite": suite, "benchmark": bench}
        for suite, benches in SUITES.items()
        for bench in benches
    ]
    return ColumnTable.from_rows(rows)


def table2_3() -> ColumnTable:
    """Tables II and III: the profiling-metric catalogs."""
    rows = [
        {"system": "intel", "metric_id": i, "metric": m}
        for i, m in enumerate(INTEL_METRICS)
    ] + [
        {"system": "amd", "metric_id": i, "metric": m}
        for i, m in enumerate(AMD_METRICS)
    ]
    return ColumnTable.from_rows(rows)
