"""Experiment configuration.

One config object drives every figure/table runner so the full
reproduction, the fast CI variant, and ad-hoc studies differ only in a few
numbers.  The paper-scale configuration matches Section IV: 60 benchmarks,
1,000 runs, 10-sample probes, both systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..simbench.suites import benchmark_names

__all__ = ["ExperimentConfig", "PAPER_CONFIG", "FAST_CONFIG"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment runners.

    Attributes
    ----------
    benchmarks:
        Benchmarks included in the study (default: the full Table-I
        roster).
    n_runs:
        Runs per measured campaign (paper: 1,000).
    n_probe_runs:
        Probe size for use case 1 (paper default: 10).
    n_replicas_uc1 / n_replicas_uc2:
        Training-row replicas per benchmark.
    representations / models:
        Registry names swept by the representation x model grids.
    sample_counts:
        Probe sizes swept in Fig. 6.
    root_seed:
        Seed for the simulated measurement campaigns.
    eval_seed:
        Seed for probe sampling / KS draws inside evaluations.
    n_workers:
        Process count for measurement sweeps (1 = serial).
    tree_method:
        Split-search kernel for the tree-based grid models: ``"exact"``
        (reference path, default) or ``"hist"`` (pre-binned fast path).
    """

    benchmarks: tuple[str, ...] = field(default_factory=benchmark_names)
    n_runs: int = 1000
    n_probe_runs: int = 10
    n_replicas_uc1: int = 6
    n_replicas_uc2: int = 4
    representations: tuple[str, ...] = ("histogram", "pymaxent", "pearsonrnd")
    models: tuple[str, ...] = ("knn", "rf", "xgboost")
    sample_counts: tuple[int, ...] = (1, 2, 3, 5, 10, 20, 50)
    root_seed: int = 777
    eval_seed: int = 616161
    n_workers: int = 1
    tree_method: str = "exact"

    def resolve_grid_model(self, name: str):
        """(model instance, fold-vector memo key) for one grid cell.

        Applies ``tree_method`` to registry models that expose the knob
        and folds it into the memo key, so hist and exact fits of the
        same model never share a cache entry.
        """
        from .. import registry

        model = registry.model(name)
        if self.tree_method != "exact" and hasattr(model, "tree_method"):
            model.tree_method = self.tree_method
            return model, f"{name}+{self.tree_method}"
        return model, name

    def scaled_down(self, *, n_benchmarks: int = 16, n_runs: int = 300) -> "ExperimentConfig":
        """A cheaper variant for tests/CI: fewer benchmarks and runs."""
        return replace(
            self,
            benchmarks=self.benchmarks[:n_benchmarks],
            n_runs=n_runs,
            n_replicas_uc1=min(self.n_replicas_uc1, 4),
            n_replicas_uc2=min(self.n_replicas_uc2, 3),
        )


#: Full paper-scale configuration.
PAPER_CONFIG = ExperimentConfig()

#: Small deterministic configuration for unit/integration tests.
FAST_CONFIG = PAPER_CONFIG.scaled_down()
