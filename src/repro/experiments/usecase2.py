"""Use case 2 experiment runners — Figs. 7, 8 and 9 of the paper.

* :func:`representation_model_grid` — Fig. 7: KS per (representation,
  model) when measuring on AMD and predicting for Intel;
* :func:`direction_study` — Fig. 8: AMD->Intel vs Intel->AMD;
* :func:`overlay_examples` — Fig. 9: measured vs. predicted overlays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs, registry
from .._validation import check_random_state
from ..core.engine import CrossSystemDesign
from ..errors import ValidationError
from ..core.config import EvalConfig
from ..core.evaluation import (
    evaluate_cross_system,
    score_fold_vectors,
)
from ..core.predictors import CrossSystemPredictor
from ..data.dataset import RunCampaign
from ..data.table import ColumnTable
from ..parallel.seeding import seed_for
from ..parallel.worker_pool import WorkerPool
from ..simbench.runner import measure_all
from .config import ExperimentConfig, PAPER_CONFIG
from .reporting import StageTimer

__all__ = [
    "measure_both_systems",
    "representation_model_grid",
    "direction_study",
    "overlay_examples",
    "CrossOverlayExample",
]


def measure_both_systems(
    config: ExperimentConfig = PAPER_CONFIG,
) -> tuple[dict[str, RunCampaign], dict[str, RunCampaign]]:
    """(amd campaigns, intel campaigns) for the configured roster."""
    amd = measure_all(
        "amd",
        benchmarks=config.benchmarks,
        n_runs=config.n_runs,
        root_seed=config.root_seed,
        n_workers=config.n_workers,
    )
    intel = measure_all(
        "intel",
        benchmarks=config.benchmarks,
        n_runs=config.n_runs,
        root_seed=config.root_seed,
        n_workers=config.n_workers,
    )
    return amd, intel


def representation_model_grid(
    source: dict[str, RunCampaign],
    target: dict[str, RunCampaign],
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    timer: StageTimer | None = None,
) -> ColumnTable:
    """Fig. 7 data: (representation, model, benchmark, ks), source->target.

    Shares one :class:`~repro.core.engine.CrossSystemDesign` across all
    nine cells; encoding-compatible representations also share fold
    predictions.  Pass a timer for the phase breakdown.
    """
    timer = timer if timer is not None else StageTimer()
    common = sorted(set(source) & set(target))
    if len(common) < 2:
        raise ValidationError("need at least two benchmarks common to both systems")
    with timer.time("featurize"):
        design = CrossSystemDesign(
            {k: source[k] for k in common},
            {k: target[k] for k in common},
            n_replicas=config.n_replicas_uc2,
            seed=config.eval_seed,
        )
    frames = []
    with WorkerPool(config.n_workers) as pool:
        for rep_name in config.representations:
            rep = registry.representation(rep_name)
            for model_name in config.models:
                model, model_key = config.resolve_grid_model(model_name)
                with obs.span("cell", representation=rep_name, model=model_name):
                    with timer.time("fit"):
                        vectors = design.fold_vectors(
                            model,
                            rep,
                            model_key=model_key,
                            n_workers=config.n_workers,
                            pool=pool,
                        )
                    with timer.time("score"):
                        tab = score_fold_vectors(
                            vectors, rep, design.measured, seed=config.eval_seed
                        )
                for row in tab.rows():
                    frames.append(
                        {
                            "representation": rep_name,
                            "model": model_name,
                            "benchmark": row["benchmark"],
                            "suite": row["suite"],
                            "ks": float(row["ks"]),
                        }
                    )
    return ColumnTable.from_rows(frames)


def direction_study(
    amd: dict[str, RunCampaign],
    intel: dict[str, RunCampaign],
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    representation: str = "pearsonrnd",
    model: str = "knn",
) -> ColumnTable:
    """Fig. 8 data: per-benchmark KS for both prediction directions.

    Both directions share one persistent worker pool, so the second
    direction dispatches onto already-warm workers.
    """
    rep = registry.representation(representation)
    frames = []
    with WorkerPool(config.n_workers) as pool:
        for direction, (src, dst) in {
            "amd_to_intel": (amd, intel),
            "intel_to_amd": (intel, amd),
        }.items():
            tab = evaluate_cross_system(
                src,
                dst,
                config=EvalConfig(
                    representation=rep,
                    model=model,
                    n_replicas=config.n_replicas_uc2,
                    seed=config.eval_seed,
                    n_workers=config.n_workers,
                    tree_method=config.tree_method,
                ),
                pool=pool,
            )
            for row in tab.rows():
                frames.append(
                    {
                        "direction": direction,
                        "benchmark": row["benchmark"],
                        "suite": row["suite"],
                        "ks": float(row["ks"]),
                    }
                )
    return ColumnTable.from_rows(frames)


@dataclass(frozen=True)
class CrossOverlayExample:
    """Measured vs. predicted target-system samples for one benchmark."""

    benchmark: str
    ks: float
    measured: np.ndarray
    predicted: np.ndarray


def overlay_examples(
    source: dict[str, RunCampaign],
    target: dict[str, RunCampaign],
    benchmarks: tuple[str, ...],
    config: ExperimentConfig = PAPER_CONFIG,
    *,
    representation: str = "pearsonrnd",
    model: str = "knn",
) -> list[CrossOverlayExample]:
    """Fig. 9 data: true-LOGO cross-system overlays for selected benchmarks."""
    rep = registry.representation(representation)
    out = []
    for bench in benchmarks:
        if bench not in source or bench not in target:
            continue
        predictor = CrossSystemPredictor(
            model=registry.model(model),
            representation=rep,
            n_replicas=config.n_replicas_uc2,
            seed=config.eval_seed,
        ).fit(source, target, exclude=(bench,))
        vector = predictor.predict_vector(source[bench])
        recon = rep.reconstruct(vector)
        rng = check_random_state(seed_for(config.eval_seed, "xoverlay", bench))
        measured = target[bench].relative_times()
        predicted = recon.sample(target[bench].n_runs, rng=rng)
        ks = rep.ks_score(vector, measured, rng=rng)
        out.append(
            CrossOverlayExample(
                benchmark=bench, ks=float(ks), measured=measured, predicted=predicted
            )
        )
    return out
