"""Experiment runners — one per paper figure/table (see DESIGN.md index)."""

from .config import FAST_CONFIG, PAPER_CONFIG, ExperimentConfig
from .figures import Figure1Data, figure1, figure3, table1, table2_3
from .reporting import (
    best_by_model,
    best_by_representation,
    direction_report,
    grid_mean_ks,
    grid_report,
    sweep_report,
)
from . import usecase1, usecase2

__all__ = [
    "FAST_CONFIG",
    "PAPER_CONFIG",
    "ExperimentConfig",
    "Figure1Data",
    "figure1",
    "figure3",
    "table1",
    "table2_3",
    "best_by_model",
    "best_by_representation",
    "direction_report",
    "grid_mean_ks",
    "grid_report",
    "sweep_report",
    "usecase1",
    "usecase2",
]
