"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still letting programming errors (``TypeError`` on wrong argument
types, etc.) propagate normally.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NotFittedError",
    "ValidationError",
    "MomentError",
    "ReconstructionError",
    "ConvergenceError",
    "UnknownBenchmarkError",
    "UnknownSystemError",
    "SerializationError",
    "ArtifactError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An input array or argument failed validation."""


class NotFittedError(ReproError, RuntimeError):
    """An estimator was used before :meth:`fit` was called."""


class MomentError(ValidationError):
    """A moment vector is infeasible (e.g. kurtosis < skewness**2 + 1)."""


class ReconstructionError(ReproError, RuntimeError):
    """A distribution could not be reconstructed from its representation."""


class ConvergenceError(ReconstructionError):
    """An iterative reconstruction (e.g. MaxEnt Newton solve) diverged."""


class UnknownBenchmarkError(ReproError, KeyError):
    """A benchmark name was not found in the roster."""


class UnknownSystemError(ReproError, KeyError):
    """A system name was not found in the registry."""


class SerializationError(ReproError, RuntimeError):
    """A model blob failed its schema/integrity check at load time."""


class ArtifactError(ReproError, RuntimeError):
    """An artifact-store object is missing, torn, or foreign."""
