"""Unified component registry — the v2 lookup surface.

Historically the library exposed two disjoint string lookups:
``repro.core.evaluation.get_model`` for regression models and
``repro.core.representations.get_representation`` for distribution
representations, each with its own error wording and no way to discover
what exists.  This module merges them behind one namespace:

>>> from repro import registry
>>> registry.available()                            # doctest: +SKIP
{'model': ('knn', 'rf', 'xgboost'),
 'representation': ('histogram', 'pearsonrnd', 'pymaxent', 'quantile')}
>>> registry.model("knn")                           # doctest: +SKIP
KNNRegressor(n_neighbors=15, metric='cosine', weights='uniform')
>>> registry.representation("pearsonrnd")           # doctest: +SKIP
PearsonRndRepresentation(n_dims=4)

Unknown names raise :class:`~repro.errors.ValidationError` with
*did-you-mean* suggestions — including a cross-kind hint when the name
exists under the other kind (``registry.model("pearsonrnd")`` points at
``representation``).

The legacy lookups remain importable as deprecation shims that forward
here and emit :class:`DeprecationWarning`; see the deprecation policy in
the README.
"""

from __future__ import annotations

import difflib
from typing import Any

from .errors import ValidationError

__all__ = [
    "KINDS",
    "ASSUMPTIONS",
    "assumption",
    "available",
    "create",
    "model",
    "representation",
    "suggest",
]

#: The registered component kinds.
KINDS = ("model", "representation")

#: Registered moment-recovery assumptions for percentile-only probes
#: (see :mod:`repro.core.sketch`).  Not a registry *kind* — assumptions
#: are closed-set strategy names, not instantiable components — but
#: validated here so config errors carry did-you-mean hints.
ASSUMPTIONS = ("lognormal", "pearson")


def _tables() -> dict[str, dict[str, Any]]:
    """Kind -> (name -> factory) tables, resolved lazily to avoid import
    cycles with :mod:`repro.core` (which re-exports the legacy shims)."""
    from .core.evaluation import MODELS
    from .core.representations import REPRESENTATIONS, _register_extensions

    if "quantile" not in REPRESENTATIONS:
        _register_extensions()
    return {"model": dict(MODELS), "representation": dict(REPRESENTATIONS)}


def available(kind: str | None = None) -> dict[str, tuple[str, ...]] | tuple[str, ...]:
    """Registered names, as ``kind -> names`` (or one kind's names).

    >>> sorted(available("model"))
    ['knn', 'rf', 'xgboost']
    """
    tables = _tables()
    if kind is None:
        return {k: tuple(sorted(tables[k])) for k in KINDS}
    if kind not in tables:
        raise ValidationError(f"unknown registry kind {kind!r}; choose from {KINDS}")
    return tuple(sorted(tables[kind]))


def suggest(kind: str, name: str) -> list[str]:
    """Close matches for a misspelled *name* within *kind* (did-you-mean)."""
    names = sorted(_tables()[kind])
    return difflib.get_close_matches(name.lower(), names, n=3, cutoff=0.5)


def create(kind: str, name: str, **kwargs) -> Any:
    """Instantiate a registered component by ``(kind, name)``.

    Models take no keyword arguments; representations forward *kwargs* to
    their constructor (e.g. ``create("representation", "quantile",
    n_quantiles=12)``).  Unknown names raise
    :class:`~repro.errors.ValidationError` with did-you-mean suggestions,
    including a cross-kind pointer when the name is registered under the
    other kind.
    """
    tables = _tables()
    if kind not in tables:
        raise ValidationError(f"unknown registry kind {kind!r}; choose from {KINDS}")
    key = name.lower()
    factory = tables[kind].get(key)
    if factory is None:
        hints = []
        close = suggest(kind, key)
        if close:
            hints.append(f"did you mean {', '.join(repr(c) for c in close)}?")
        for other in KINDS:
            if other != kind and key in tables[other]:
                hints.append(
                    f"{name!r} is a registered {other} — use "
                    f"registry.{other}({name!r})"
                )
        detail = " ".join(hints) or f"choose from {sorted(tables[kind])}"
        raise ValidationError(f"unknown {kind} {name!r}; {detail}")
    if kind == "model" and kwargs:
        raise ValidationError("registry models take no keyword arguments")
    return factory(**kwargs) if kwargs else factory()


def model(name: str) -> Any:
    """Fresh instance of a registered regression model."""
    return create("model", name)


def representation(name: str, **kwargs) -> Any:
    """Fresh instance of a registered distribution representation."""
    return create("representation", name, **kwargs)


def assumption(name: str) -> str:
    """Validate a sketch-probe assumption name; returns it canonical.

    >>> assumption("LogNormal")
    'lognormal'
    """
    if not isinstance(name, str):
        raise ValidationError(
            f"assumption must be a string, got {type(name).__name__}"
        )
    key = name.lower()
    if key not in ASSUMPTIONS:
        close = difflib.get_close_matches(key, ASSUMPTIONS, n=3, cutoff=0.5)
        hint = (
            f"did you mean {', '.join(repr(c) for c in close)}?"
            if close
            else f"choose from {ASSUMPTIONS}"
        )
        raise ValidationError(f"unknown assumption {name!r}; {hint}")
    return key
