"""Content-addressed persistent cache of measurement campaign sets.

Simulating a paper-scale sweep (60 benchmarks x 1,000 runs x 2 systems)
is the fixed cost every benchmark session, test run and experiment CLI
invocation pays before any evaluation starts.  Campaigns are pure
functions of ``(system, roster, n_runs, root_seed)`` — the simulator
keys every RNG stream off exactly those values — so a campaign set can
be addressed by the hash of its parameters and stored once, forever.

:class:`CampaignCache` layers two tiers behind that key:

* an in-memory LRU of recently used campaign sets (``OrderedDict``),
  serving repeat lookups within a process at dict-hit cost;
* an optional on-disk tier (one ``.npz`` per campaign set, stacked
  arrays + JSON metadata) shared across processes and sessions.  Files
  are written atomically (temp file + ``os.replace``) so concurrent
  benchmark runs never observe a torn cache entry.

The disk root comes from the constructor argument or the
``REPRO_CACHE_DIR`` environment variable; with neither, the cache is
memory-only.  This module deliberately knows nothing about the
simulator: :meth:`CampaignCache.get_or_measure` takes the measurement
callable from the caller (see
:func:`repro.simbench.runner.cached_measure_all`).

With :mod:`repro.obs` enabled, lookups emit the ``cache.*`` counters
(memory/disk hits, misses, evictions, corruptions, bytes moved) and disk
I/O is wrapped in ``cache.disk_load``/``cache.disk_save`` spans; see
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Callable

import numpy as np

from .. import obs
from ..parallel.seeding import stable_hash
from .dataset import RunCampaign

__all__ = ["CampaignCache", "campaign_set_key"]

#: Cache-format version; bump to invalidate every existing entry.
_FORMAT = 1


def campaign_set_key(
    system: str,
    benchmarks: tuple[str, ...],
    n_runs: int,
    root_seed: int,
) -> str:
    """Content address of one campaign set.

    A stable SHA-256-based hex digest of every parameter the simulator's
    RNG streams depend on; equal keys therefore guarantee bit-identical
    campaign sets.
    """
    digest = stable_hash(
        f"v{_FORMAT}",
        system,
        *benchmarks,
        str(int(n_runs)),
        str(int(root_seed)),
        bits=128,
    )
    return f"{system}-{int(n_runs)}r-{digest:032x}"


class CampaignCache:
    """Two-tier (memory LRU + optional disk) campaign-set cache.

    Parameters
    ----------
    root:
        Directory for the on-disk tier.  ``None`` consults the
        ``REPRO_CACHE_DIR`` environment variable; if that is also unset
        the cache is memory-only.
    max_memory_items:
        Campaign *sets* kept in the in-memory LRU tier.
    """

    def __init__(self, root=None, *, max_memory_items: int = 8) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or None
        self.root = Path(root) if root is not None else None
        self.max_memory_items = max(1, int(max_memory_items))
        self._memory: OrderedDict[str, dict[str, RunCampaign]] = OrderedDict()

    # -- lookup --------------------------------------------------------------

    def get(
        self,
        system: str,
        benchmarks: tuple[str, ...],
        n_runs: int,
        root_seed: int,
    ) -> dict[str, RunCampaign] | None:
        """The cached campaign set, or None on a full miss."""
        key = campaign_set_key(system, tuple(benchmarks), n_runs, root_seed)
        hit = self._memory.get(key)
        if hit is not None:
            obs.counter("cache.memory.hits")
            self._memory.move_to_end(key)
            return dict(hit)
        loaded = self._load_disk(key)
        if loaded is not None:
            obs.counter("cache.disk.hits")
            self._remember(key, loaded)
            return dict(loaded)
        obs.counter("cache.misses")
        return None

    def put(
        self,
        system: str,
        benchmarks: tuple[str, ...],
        n_runs: int,
        root_seed: int,
        campaigns: dict[str, RunCampaign],
    ) -> None:
        """Insert a measured campaign set into both tiers."""
        key = campaign_set_key(system, tuple(benchmarks), n_runs, root_seed)
        self._remember(key, dict(campaigns))
        if self.root is not None:
            self._save_disk(key, campaigns)

    def get_or_measure(
        self,
        system: str,
        benchmarks: tuple[str, ...],
        n_runs: int,
        root_seed: int,
        measure: Callable[[], dict[str, RunCampaign]],
    ) -> dict[str, RunCampaign]:
        """Cached campaign set, measuring (and caching) on a miss.

        ``measure`` runs only on a full miss; because campaigns are
        deterministic in the key parameters, a hit is bit-identical to
        what ``measure`` would have produced.
        """
        found = self.get(system, benchmarks, n_runs, root_seed)
        if found is not None:
            return found
        campaigns = measure()
        self.put(system, benchmarks, n_runs, root_seed, campaigns)
        return dict(campaigns)

    def clear_memory(self) -> None:
        """Drop the in-memory tier (disk entries survive)."""
        self._memory.clear()

    # -- internals -----------------------------------------------------------

    def _remember(self, key: str, campaigns: dict[str, RunCampaign]) -> None:
        self._memory[key] = campaigns
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_items:
            obs.counter("cache.evictions")
            self._memory.popitem(last=False)

    def _disk_path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / f"{key}.npz"

    def _save_disk(self, key: str, campaigns: dict[str, RunCampaign]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        names = sorted(campaigns)
        sets = [campaigns[n] for n in names]
        meta = {
            "format": _FORMAT,
            "benchmarks": names,
            "system": sets[0].system,
            "metric_names": list(sets[0].metric_names),
        }
        path = self._disk_path(key)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.root), prefix=f".{key}.", suffix=".tmp"
        )
        try:
            with obs.span("cache.disk_save", key=key):
                with os.fdopen(fd, "wb") as fh:
                    np.savez_compressed(
                        fh,
                        runtimes=np.stack([c.runtimes for c in sets]),
                        counters=np.stack([c.counters for c in sets]),
                        meta=json.dumps(meta),
                    )
                os.replace(tmp, path)
            obs.counter("cache.store_bytes", path.stat().st_size)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _load_disk(self, key: str) -> dict[str, RunCampaign] | None:
        if self.root is None:
            return None
        path = self._disk_path(key)
        if not path.exists():
            return None
        try:
            with obs.span("cache.disk_load", key=key):
                with np.load(path, allow_pickle=False) as data:
                    meta = json.loads(str(data["meta"]))
                    runtimes = data["runtimes"]
                    counters = data["counters"]
            obs.counter("cache.load_bytes", path.stat().st_size)
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            # A torn or foreign file is a miss, not an error; it will be
            # rewritten atomically after the next measurement.
            obs.counter("cache.corruptions")
            return None
        metric_names = tuple(meta["metric_names"])
        return {
            name: RunCampaign(
                name,
                meta["system"],
                runtimes[i],
                counters[i],
                metric_names,
            )
            for i, name in enumerate(meta["benchmarks"])
        }
