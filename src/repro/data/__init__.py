"""Data layer: metric catalogs, campaign containers, and a mini table."""

from .campaign_cache import CampaignCache, campaign_set_key
from .catalogs import AMD_METRICS, INTEL_METRICS, metric_catalog
from .dataset import CampaignStore, RunCampaign
from .table import ColumnTable

__all__ = [
    "AMD_METRICS",
    "INTEL_METRICS",
    "metric_catalog",
    "CampaignCache",
    "campaign_set_key",
    "CampaignStore",
    "RunCampaign",
    "ColumnTable",
]
