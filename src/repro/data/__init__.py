"""Data layer: metric catalogs, campaign containers, and a mini table."""

from .catalogs import AMD_METRICS, INTEL_METRICS, metric_catalog
from .dataset import CampaignStore, RunCampaign
from .table import ColumnTable

__all__ = [
    "AMD_METRICS",
    "INTEL_METRICS",
    "metric_catalog",
    "CampaignStore",
    "RunCampaign",
    "ColumnTable",
]
