"""Perf-metric catalogs — Tables II and III of the paper, verbatim.

The paper collects 68 profiling metrics on the Intel Xeon 8358 system and
75 on the AMD EPYC 7543 system using Linux ``perf``, spanning OS software
events, generic hardware events, and vendor-specific PMU events.  The
simulated perf runner emits rates for exactly these names so feature
vectors have the paper's dimensionality and semantics.
"""

from __future__ import annotations

__all__ = ["INTEL_METRICS", "AMD_METRICS", "metric_catalog"]

#: Table II — 68 profiling metrics collected on the Intel CPU system.
INTEL_METRICS: tuple[str, ...] = (
    "branch-instructions",
    "branch-misses",
    "bus-cycles",
    "cache-misses",
    "cache-references",
    "cpu-cycles",
    "instructions",
    "ref-cycles",
    "alignment-faults",
    "bpf-output",
    "cgroup-switches",
    "context-switches",
    "cpu-clock",
    "cpu-migrations",
    "emulation-faults",
    "major-faults",
    "minor-faults",
    "page-faults",
    "task-clock",
    "duration_time",
    "L1-dcache-load-misses",
    "L1-dcache-loads",
    "L1-dcache-stores",
    "l1d.replacement",
    "L1-icache-load-misses",
    "l2_lines_in.all",
    "l2_rqsts.all_demand_miss",
    "l2_rqsts.all_rfo",
    "l2_trans.l2_wb",
    "LLC-load-misses",
    "LLC-loads",
    "LLC-store-misses",
    "LLC-stores",
    "longest_lat_cache.miss",
    "mem_inst_retired.all_loads",
    "mem_inst_retired.all_stores",
    "mem_inst_retired.lock_loads",
    "branch-load-misses",
    "branch-loads",
    "dTLB-load-misses",
    "dTLB-loads",
    "dTLB-store-misses",
    "dTLB-stores",
    "iTLB-load-misses",
    "node-load-misses",
    "node-loads",
    "node-store-misses",
    "node-stores",
    "mem-loads",
    "mem-stores",
    "slots",
    "assists.fp",
    "cycle_activity.stalls_l3_miss",
    "assists.any",
    "topdown.backend_bound_slots",
    "br_inst_retired.all_branches",
    "br_misp_retired.all_branches",
    "cpu_clk_unhalted.distributed",
    "cycle_activity.stalls_total",
    "inst_retired.any",
    "lsd.uops",
    "resource_stalls.sb",
    "resource_stalls.scoreboard",
    "dtlb_load_misses.stlb_hit",
    "dtlb_store_misses.stlb_hit",
    "itlb_misses.stlb_hit",
    "unc_cha_tor_inserts.io_hit",
    "unc_cha_tor_inserts.io_miss",
)

#: Table III — 75 profiling metrics collected on the AMD CPU system.
#: The paper's table repeats a few generic events under two IDs (perf
#: exposes them under both a generic and a vendor alias); the duplicates
#: are kept to preserve the 75-metric dimensionality.
AMD_METRICS: tuple[str, ...] = (
    "branch-instructions",
    "branch-misses",
    "cache-misses",
    "cache-references",
    "cpu-cycles",
    "instructions",
    "stalled-cycles-backend",
    "stalled-cycles-frontend",
    "alignment-faults",
    "bpf-output",
    "cgroup-switches",
    "context-switches",
    "cpu-clock",
    "cpu-migrations",
    "emulation-faults",
    "major-faults",
    "minor-faults",
    "page-faults",
    "task-clock",
    "duration_time",
    "L1-dcache-load-misses",
    "L1-dcache-loads",
    "L1-dcache-prefetches",
    "L1-icache-load-misses",
    "L1-icache-loads",
    "branch-load-misses",
    "branch-loads",
    "dTLB-load-misses",
    "dTLB-loads",
    "iTLB-load-misses",
    "iTLB-loads",
    "branch-instructions:u",
    "branch-misses:u",
    "cache-misses:u",
    "cache-references:u",
    "cpu-cycles:u",
    "stalled-cycles-backend:u",
    "stalled-cycles-frontend:u",
    "bp_l2_btb_correct",
    "bp_tlb_rel",
    "bp_l1_tlb_miss_l2_tlb_hit",
    "bp_l1_tlb_miss_l2_tlb_miss",
    "ic_fetch_stall.ic_stall_any",
    "ic_tag_hit_miss.instruction_cache_hit",
    "ic_tag_hit_miss.instruction_cache_miss",
    "op_cache_hit_miss.all_op_cache_accesses",
    "fp_ret_sse_avx_ops.all",
    "fpu_pipe_assignment.total",
    "l1_data_cache_fills_all",
    "l1_data_cache_fills_from_external_ccx_cache",
    "l1_data_cache_fills_from_memory",
    "l1_data_cache_fills_from_remote_node",
    "l1_data_cache_fills_from_within_same_ccx",
    "l1_dtlb_misses",
    "l2_cache_accesses_from_dc_misses",
    "l2_cache_accesses_from_ic_misses",
    "l2_cache_hits_from_dc_misses",
    "l2_cache_hits_from_ic_misses",
    "l2_cache_hits_from_l2_hwpf",
    "l2_cache_misses_from_dc_misses",
    "l2_cache_misses_from_ic_miss",
    "l2_dtlb_misses",
    "l2_itlb_misses",
    "macro_ops_retired",
    "sse_avx_stalls",
    "l3_cache_accesses",
    "l3_misses",
    "ls_sw_pf_dc_fills.mem_io_local",
    "ls_sw_pf_dc_fills.mem_io_remote",
    "ls_hw_pf_dc_fills.mem_io_local",
    "ls_hw_pf_dc_fills.mem_io_remote",
    "ls_int_taken",
    "all_tlbs_flushed",
    "instructions:u",
    "bp_l1_btb_correct",
)


def metric_catalog(system_kind: str) -> tuple[str, ...]:
    """Metric list for a system kind (``"intel"`` or ``"amd"``)."""
    kind = system_kind.lower()
    if kind == "intel":
        return INTEL_METRICS
    if kind == "amd":
        return AMD_METRICS
    from ..errors import UnknownSystemError

    raise UnknownSystemError(f"no metric catalog for system kind {system_kind!r}")


assert len(INTEL_METRICS) == 68, len(INTEL_METRICS)
assert len(AMD_METRICS) == 75, len(AMD_METRICS)
