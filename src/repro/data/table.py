"""A minimal column-oriented table (pandas stand-in).

The experiment harness needs tidy tabular results — named columns, row
filtering, group-by aggregation, CSV export — but pandas is not available
in this environment.  ``ColumnTable`` covers exactly that surface with
NumPy object/float columns and nothing more.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..errors import ValidationError

__all__ = ["ColumnTable"]


class ColumnTable:
    """Immutable-ish named-column table.

    Columns are NumPy arrays of equal length.  Construction validates
    lengths; mutation is limited to :meth:`with_column` which returns a
    new table.
    """

    def __init__(self, columns: Mapping[str, Sequence[Any]]) -> None:
        if not columns:
            raise ValidationError("a table needs at least one column")
        self._data: dict[str, np.ndarray] = {}
        length: int | None = None
        for name, values in columns.items():
            arr = np.asarray(values)
            if length is None:
                length = arr.shape[0] if arr.ndim else 1
            if arr.ndim != 1 or arr.shape[0] != length:
                raise ValidationError(
                    f"column {name!r} has shape {arr.shape}, expected ({length},)"
                )
            self._data[name] = arr
        self._length = int(length or 0)

    # -- basics -------------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        """Column names in insertion order."""
        return list(self._data)

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, name: str) -> np.ndarray:
        if name not in self._data:
            raise KeyError(f"no column {name!r}; have {self.column_names}")
        return self._data[name]

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def row(self, i: int) -> dict[str, Any]:
        """Row *i* as a plain dict."""
        return {k: v[i] for k, v in self._data.items()}

    def rows(self) -> Iterable[dict[str, Any]]:
        """Iterate rows as dicts."""
        return (self.row(i) for i in range(self._length))

    # -- transforms -----------------------------------------------------------

    def with_column(self, name: str, values) -> "ColumnTable":
        """New table with an added/replaced column."""
        data = dict(self._data)
        data[name] = np.asarray(values)
        return ColumnTable(data)

    def select(self, names: Sequence[str]) -> "ColumnTable":
        """New table with a column subset."""
        return ColumnTable({n: self[n] for n in names})

    def filter(self, mask) -> "ColumnTable":
        """New table keeping rows where *mask* is True."""
        m = np.asarray(mask, dtype=bool)
        if m.shape != (self._length,):
            raise ValidationError(f"mask shape {m.shape} != ({self._length},)")
        return ColumnTable({k: v[m] for k, v in self._data.items()})

    def sort_by(self, name: str, *, descending: bool = False) -> "ColumnTable":
        """New table sorted by one column."""
        order = np.argsort(self[name], kind="stable")
        if descending:
            order = order[::-1]
        return ColumnTable({k: v[order] for k, v in self._data.items()})

    def group_by(
        self,
        key: str,
        aggregations: Mapping[str, tuple[str, Callable[[np.ndarray], Any]]],
    ) -> "ColumnTable":
        """Group rows by *key* and aggregate.

        ``aggregations`` maps output column name to
        ``(input column, reduction)``.
        """
        keys = self[key]
        uniques = np.unique(keys)
        out: dict[str, list[Any]] = {key: list(uniques)}
        for out_name in aggregations:
            out[out_name] = []
        for val in uniques:
            mask = keys == val
            for out_name, (col, fn) in aggregations.items():
                out[out_name].append(fn(self[col][mask]))
        return ColumnTable(out)

    # -- IO ---------------------------------------------------------------

    def to_csv(self, path) -> None:
        """Write the table as CSV (floats at full repr precision)."""
        import csv

        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.column_names)
            for row in self.rows():
                writer.writerow([row[c] for c in self.column_names])

    @classmethod
    def from_rows(cls, rows: Sequence[Mapping[str, Any]]) -> "ColumnTable":
        """Build a table from a list of dict rows (keys must agree)."""
        if not rows:
            raise ValidationError("from_rows needs at least one row")
        names = list(rows[0])
        return cls({n: [r[n] for r in rows] for n in names})

    def to_markdown(self, *, floatfmt: str = ".4g") -> str:
        """Render as a GitHub-flavored markdown table."""

        def fmt(v: Any) -> str:
            if isinstance(v, (float, np.floating)):
                return format(float(v), floatfmt)
            return str(v)

        header = "| " + " | ".join(self.column_names) + " |"
        sep = "|" + "|".join("---" for _ in self.column_names) + "|"
        body = [
            "| " + " | ".join(fmt(row[c]) for c in self.column_names) + " |"
            for row in self.rows()
        ]
        return "\n".join([header, sep, *body])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnTable({self._length} rows x {len(self._data)} cols)"
