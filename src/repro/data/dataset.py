"""Run-campaign containers and persistence.

A *campaign* is the measured record the prediction pipelines consume: for
one (benchmark, system) pair, the runtimes of many repeated executions and
the per-run profiling-metric matrix.  Campaigns serialize to ``.npz`` so
expensive simulated measurement sweeps can be cached on disk, mirroring
how the paper's authors stored their thousand-run datasets.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .._validation import as_float_array
from ..errors import ValidationError

__all__ = ["RunCampaign", "CampaignStore"]


@dataclass(frozen=True)
class RunCampaign:
    """All measured runs of one benchmark on one system.

    Attributes
    ----------
    benchmark:
        Fully-qualified benchmark name, e.g. ``"spec_omp/376"``.
    system:
        System name, e.g. ``"intel"``.
    runtimes:
        Absolute runtimes in seconds, shape ``(n_runs,)``.
    counters:
        Raw (non-normalized) counter totals per run, shape
        ``(n_runs, n_metrics)``.
    metric_names:
        Column labels for ``counters``.
    """

    benchmark: str
    system: str
    runtimes: np.ndarray
    counters: np.ndarray
    metric_names: tuple[str, ...]

    def __post_init__(self) -> None:
        rt = as_float_array(self.runtimes, name="runtimes", allow_empty=False)
        ct = as_float_array(self.counters, name="counters", allow_empty=False)
        if rt.ndim != 1:
            raise ValidationError(f"runtimes must be 1-D, got {rt.shape}")
        if ct.shape != (rt.size, len(self.metric_names)):
            raise ValidationError(
                f"counters shape {ct.shape} inconsistent with "
                f"{rt.size} runs x {len(self.metric_names)} metrics"
            )
        if np.any(rt <= 0.0):
            raise ValidationError("runtimes must be strictly positive")
        object.__setattr__(self, "runtimes", rt)
        object.__setattr__(self, "counters", ct)
        object.__setattr__(self, "metric_names", tuple(self.metric_names))

    @property
    def n_runs(self) -> int:
        """Number of measured runs."""
        return int(self.runtimes.size)

    def relative_times(self) -> np.ndarray:
        """Runtimes normalized to mean 1 (the paper's 'relative time')."""
        return self.runtimes / self.runtimes.mean()

    def rates(self) -> np.ndarray:
        """Counters normalized per second of runtime (paper Section III-B1)."""
        return self.counters / self.runtimes[:, None]

    def subset(self, indices) -> "RunCampaign":
        """Campaign restricted to the given run indices."""
        idx = np.asarray(indices, dtype=np.intp)
        return RunCampaign(
            self.benchmark,
            self.system,
            self.runtimes[idx],
            self.counters[idx],
            self.metric_names,
        )

    def sample_runs(self, n: int, rng: np.random.Generator) -> "RunCampaign":
        """Random without-replacement subset of *n* runs."""
        if n > self.n_runs:
            raise ValidationError(f"cannot sample {n} of {self.n_runs} runs")
        return self.subset(rng.choice(self.n_runs, size=n, replace=False))


class CampaignStore:
    """Directory-backed cache of campaigns (one ``.npz`` per pair)."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, benchmark: str, system: str) -> Path:
        safe = benchmark.replace("/", "__")
        return self.root / f"{system}__{safe}.npz"

    def save(self, campaign: RunCampaign) -> Path:
        """Persist a campaign; returns the file path."""
        path = self._path(campaign.benchmark, campaign.system)
        np.savez_compressed(
            path,
            runtimes=campaign.runtimes,
            counters=campaign.counters,
            meta=json.dumps(
                {
                    "benchmark": campaign.benchmark,
                    "system": campaign.system,
                    "metric_names": list(campaign.metric_names),
                }
            ),
        )
        return path

    def load(self, benchmark: str, system: str) -> RunCampaign:
        """Load a previously saved campaign."""
        path = self._path(benchmark, system)
        if not path.exists():
            raise FileNotFoundError(f"no cached campaign at {path}")
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            return RunCampaign(
                meta["benchmark"],
                meta["system"],
                data["runtimes"],
                data["counters"],
                tuple(meta["metric_names"]),
            )

    def has(self, benchmark: str, system: str) -> bool:
        """Whether a cached campaign exists."""
        return self._path(benchmark, system).exists()

    def list_campaigns(self) -> list[tuple[str, str]]:
        """All (benchmark, system) pairs in the store."""
        out = []
        for p in sorted(self.root.glob("*.npz")):
            system, bench = p.stem.split("__", 1)
            out.append((bench.replace("__", "/"), system))
        return out
