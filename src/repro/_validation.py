"""Input-validation helpers shared across the library.

These mirror the role of ``sklearn.utils.validation`` but are tailored to
this package: they normalize inputs to C-contiguous float64 arrays (views
when possible, copies only when required) and raise
:class:`~repro.errors.ValidationError` with actionable messages.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .errors import ValidationError

__all__ = [
    "as_float_array",
    "as_sample_array",
    "check_2d",
    "check_matching_length",
    "check_positive_int",
    "check_probability",
    "check_random_state",
]


def as_float_array(x, *, name: str = "array", allow_empty: bool = True) -> np.ndarray:
    """Convert *x* to a float64 ndarray, rejecting NaN/inf values.

    Returns a view when *x* is already a float64 ndarray (no copy on the
    hot path), otherwise a converted copy.
    """
    arr = np.asarray(x, dtype=np.float64)
    if not allow_empty and arr.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return arr


def as_sample_array(x, *, name: str = "samples", min_size: int = 1) -> np.ndarray:
    """Convert *x* to a 1-D float64 sample array with at least *min_size* items."""
    arr = as_float_array(x, name=name)
    arr = np.atleast_1d(arr)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if arr.size < min_size:
        raise ValidationError(
            f"{name} needs at least {min_size} values, got {arr.size}"
        )
    return arr


def check_2d(x, *, name: str = "X") -> np.ndarray:
    """Validate a 2-D float feature matrix."""
    arr = as_float_array(x, name=name, allow_empty=False)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    return arr


def check_matching_length(a: np.ndarray, b: np.ndarray, *, names=("X", "y")) -> None:
    """Raise unless the first axes of *a* and *b* match."""
    if len(a) != len(b):
        raise ValidationError(
            f"{names[0]} and {names[1]} have mismatched lengths: "
            f"{len(a)} != {len(b)}"
        )


def check_positive_int(value, *, name: str) -> int:
    """Validate that *value* is a positive integer and return it as int."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return int(value)


def check_probability(value, *, name: str, inclusive: bool = True) -> float:
    """Validate that *value* lies in [0, 1] (or (0, 1) when not inclusive)."""
    v = float(value)
    lo_ok = v >= 0.0 if inclusive else v > 0.0
    hi_ok = v <= 1.0 if inclusive else v < 1.0
    if not (lo_ok and hi_ok):
        raise ValidationError(f"{name} must lie in the unit interval, got {value}")
    return v


def check_random_state(seed) -> np.random.Generator:
    """Normalize *seed* into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an int, a ``SeedSequence``, or an
    existing ``Generator`` (returned as-is so callers can share streams).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(seed)
    if isinstance(seed, Sequence) and all(isinstance(s, (int, np.integer)) for s in seed):
        return np.random.default_rng(seed)
    raise ValidationError(
        f"cannot interpret {type(seed).__name__} as a random seed or Generator"
    )
